(* Task-graph core: construction validation, adjacency, topological order,
   levels, analysis, generators, DOT. *)

module O = Onesched
open Util

let tiny () =
  O.Graph.create ~name:"tiny" ~weights:[| 1.; 2.; 3.; 4. |]
    ~edges:[ (0, 1, 5.); (0, 2, 6.); (1, 3, 7.); (2, 3, 8.) ]
    ()

let construction_tests =
  [
    Alcotest.test_case "accessors" `Quick (fun () ->
        let g = tiny () in
        check_int "tasks" 4 (O.Graph.n_tasks g);
        check_int "edges" 4 (O.Graph.n_edges g);
        check_float "weight" 3. (O.Graph.weight g 2);
        check_float "total" 10. (O.Graph.total_weight g);
        Alcotest.(check (list int)) "preds of 3" [ 1; 2 ] (O.Graph.preds g 3);
        Alcotest.(check (list int)) "succs of 0" [ 1; 2 ] (O.Graph.succs g 0);
        check_int "in-degree" 2 (O.Graph.in_degree g 3);
        check_int "out-degree" 2 (O.Graph.out_degree g 0);
        Alcotest.(check (list int)) "entries" [ 0 ] (O.Graph.entry_tasks g);
        Alcotest.(check (list int)) "exits" [ 3 ] (O.Graph.exit_tasks g);
        (match O.Graph.find_edge g ~src:1 ~dst:3 with
        | Some e -> check_float "edge data" 7. e.O.Graph.data
        | None -> Alcotest.fail "edge 1->3 missing");
        check_bool "no edge 3->0" true (O.Graph.find_edge g ~src:3 ~dst:0 = None));
    Alcotest.test_case "rejects cycles" `Quick (fun () ->
        Alcotest.check_raises "cycle" (Invalid_argument "Graph.create: cycle detected")
          (fun () ->
            ignore
              (O.Graph.create ~weights:[| 1.; 1. |]
                 ~edges:[ (0, 1, 0.); (1, 0, 0.) ]
                 ())));
    Alcotest.test_case "rejects self-loops, dups, bad refs" `Quick (fun () ->
        let mk edges = ignore (O.Graph.create ~weights:[| 1.; 1. |] ~edges ()) in
        Alcotest.check_raises "self" (Invalid_argument "Graph.create: self-loop")
          (fun () -> mk [ (0, 0, 1.) ]);
        Alcotest.check_raises "dup" (Invalid_argument "Graph.create: duplicate edge")
          (fun () -> mk [ (0, 1, 1.); (0, 1, 2.) ]);
        Alcotest.check_raises "range"
          (Invalid_argument "Graph.create: edge endpoint out of range") (fun () ->
            mk [ (0, 7, 1.) ]));
    Alcotest.test_case "rejects negative costs" `Quick (fun () ->
        Alcotest.check_raises "weight"
          (Invalid_argument "Graph.create: negative weight on task 0") (fun () ->
            ignore (O.Graph.create ~weights:[| -1. |] ~edges:[] ()));
        Alcotest.check_raises "data"
          (Invalid_argument "Graph.create: negative edge data") (fun () ->
            ignore
              (O.Graph.create ~weights:[| 1.; 1. |] ~edges:[ (0, 1, -2.) ] ())));
    Alcotest.test_case "with_data rescales" `Quick (fun () ->
        let g = tiny () in
        let g' = O.Graph.with_data g ~f:(fun e -> 2. *. e.O.Graph.data) in
        check_float "doubled" 10. (O.Graph.edge_data g' 0);
        check_float "original kept" 5. (O.Graph.edge_data g 0));
    Alcotest.test_case "topological order respects edges" `Quick (fun () ->
        let g = tiny () in
        let order = O.Graph.topological_order g in
        Alcotest.(check (array int)) "deterministic" [| 0; 1; 2; 3 |] order);
  ]

let levels_tests =
  [
    Alcotest.test_case "top/bottom levels" `Quick (fun () ->
        let g = tiny () in
        Alcotest.(check (array int)) "top" [| 0; 1; 1; 2 |] (O.Levels.top g);
        Alcotest.(check (array int)) "bottom" [| 2; 1; 1; 0 |] (O.Levels.bottom g);
        check_int "depth" 3 (O.Levels.depth g);
        check_int "width" 2 (O.Levels.width g));
    Alcotest.test_case "analysis summary" `Quick (fun () ->
        let s = O.Analysis.summarize (tiny ()) in
        check_int "depth" 3 s.O.Analysis.depth;
        check_float "cp weight" 8. s.O.Analysis.critical_path_weight;
        check_float "ccr" 2.6 s.O.Analysis.ccr);
    Alcotest.test_case "critical path follows heaviest branch" `Quick (fun () ->
        let g = tiny () in
        Alcotest.(check (list int)) "path" [ 0; 2; 3 ] (O.Analysis.critical_path g));
    qtest ~count:200 "levels are consistent with edges" graph_gen (fun params ->
        let g = build_graph params in
        let top = O.Levels.top g and bottom = O.Levels.bottom g in
        List.for_all
          (fun (e : O.Graph.edge) ->
            top.(e.src) < top.(e.dst) && bottom.(e.src) > bottom.(e.dst))
          (O.Graph.edges g));
  ]

let generator_tests =
  [
    qtest ~count:200 "generators build valid graphs" graph_gen (fun params ->
        let g = build_graph params in
        O.Graph.check_invariants g;
        true);
    qtest ~count:50 "out-tree has in-degree <= 1"
      QCheck2.Gen.(int_bound 10_000)
      (fun seed ->
        let rng = O.Rng.create ~seed in
        let g = O.Generators.out_tree rng ~n:15 ~max_arity:3 ~max_weight:4 ~max_data:4 in
        List.for_all
          (fun v -> O.Graph.in_degree g v <= 1)
          (List.init (O.Graph.n_tasks g) Fun.id));
    qtest ~count:50 "series-parallel has single source and sink"
      QCheck2.Gen.(int_bound 10_000)
      (fun seed ->
        let rng = O.Rng.create ~seed in
        let g = O.Generators.series_parallel rng ~depth:3 ~max_weight:4 ~max_data:4 in
        List.length (O.Graph.entry_tasks g) = 1
        && List.length (O.Graph.exit_tasks g) = 1);
    Alcotest.test_case "disjoint union schedules a batch of jobs" `Quick
      (fun () ->
        let a = O.Kernels.fork_join ~n:3 ~ccr:2. in
        let b = O.Kernels.laplace ~n:3 ~ccr:2. in
        let g, offsets = O.Graph.disjoint_union [ a; b ] in
        O.Graph.check_invariants g;
        check_int "total tasks" (O.Graph.n_tasks a + O.Graph.n_tasks b)
          (O.Graph.n_tasks g);
        Alcotest.(check (array int)) "offsets" [| 0; O.Graph.n_tasks a |] offsets;
        check_float "weights preserved" (O.Graph.weight b 0)
          (O.Graph.weight g offsets.(1));
        (* the union schedules like any graph *)
        let plat = O.Platform.homogeneous ~p:3 ~link_cost:1. in
        let sched = O.Heft.schedule plat g in
        check_bool "valid batch schedule" true (O.Validate.is_valid sched));
    qtest ~count:50 "disjoint union preserves edge counts"
      QCheck2.Gen.(tup2 graph_gen graph_gen)
      (fun (p1, p2) ->
        let a = build_graph p1 and b = build_graph p2 in
        let g, _ = O.Graph.disjoint_union [ a; b ] in
        O.Graph.n_edges g = O.Graph.n_edges a + O.Graph.n_edges b);
    Alcotest.test_case "dot export mentions every task" `Quick (fun () ->
        let g = tiny () in
        let dot = O.Dot.to_string g in
        List.iter
          (fun v ->
            check_bool (Printf.sprintf "t%d" v) true
              (contains dot (Printf.sprintf "t%d " v)))
          [ 0; 1; 2; 3 ]);
  ]

let suite = construction_tests @ levels_tests @ generator_tests
