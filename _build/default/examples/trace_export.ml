(* Inspecting a one-port schedule with external tools.

   Schedules are easier to debug on a real timeline viewer than in ASCII:
   this example schedules the DOOLITTLE kernel, applies the allocation
   local-search post-pass, prints the utilization profile, and writes a
   Chrome-trace JSON (open chrome://tracing or https://ui.perfetto.dev and
   load the file — each processor appears as a process with cpu / send
   port / recv port threads, so one-port serialisation is directly
   visible) plus a CSV for plotting scripts.

   Run with:  dune exec examples/trace_export.exe *)

module O = Onesched

let () =
  let platform = O.Platform.paper_platform () in
  let graph = O.Kernels.doolittle ~n:30 ~ccr:10. in
  let sched = O.Heft.schedule ~model:O.Comm_model.one_port platform graph in

  (* Try to improve the mapping without re-running the heuristic. *)
  let refined = O.Refine.improve sched in
  Printf.printf "HEFT makespan %.0f; after local search %.0f (%d moves)\n"
    refined.O.Refine.initial_makespan refined.O.Refine.final_makespan
    refined.O.Refine.accepted_moves;
  let sched = refined.O.Refine.schedule in

  Printf.printf "bound quality: %.2fx the lower bound\n\n"
    (O.Bounds.quality sched);
  print_string (O.Utilization.render (O.Utilization.profile ~buckets:60 sched));

  let trace = O.Export.to_chrome_trace sched in
  let csv = O.Export.to_csv sched in
  O.Export.write_file "doolittle_schedule.json" trace;
  O.Export.write_file "doolittle_schedule.csv" csv;
  Printf.printf
    "\nwrote doolittle_schedule.json (%d bytes, chrome://tracing) and \
     doolittle_schedule.csv (%d bytes)\n"
    (String.length trace) (String.length csv)
