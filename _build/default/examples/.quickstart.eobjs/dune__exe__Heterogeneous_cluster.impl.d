examples/heterogeneous_cluster.ml: Format List Onesched Printf String
