examples/robust_deployment.ml: List Onesched Printf
