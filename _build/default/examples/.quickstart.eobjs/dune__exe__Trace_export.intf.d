examples/trace_export.mli:
