examples/pipeline_tuning.mli:
