examples/trace_export.ml: Onesched Printf String
