examples/pipeline_tuning.ml: Array List Onesched Printf String
