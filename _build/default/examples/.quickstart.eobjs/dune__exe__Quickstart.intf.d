examples/quickstart.mli:
