examples/quickstart.ml: Format List Onesched
