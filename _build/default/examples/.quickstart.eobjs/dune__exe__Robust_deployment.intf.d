examples/robust_deployment.mli:
