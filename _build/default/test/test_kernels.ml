(* The §5 testbeds: exact shapes, weights, and the ccr rule
   data(e) = c * w(src). *)

module O = Onesched
open Util

let ccr_holds g ccr =
  List.for_all
    (fun (e : O.Graph.edge) ->
      Prelude.Stats.fequal e.data (ccr *. O.Graph.weight g e.src))
    (O.Graph.edges g)

let size_tests =
  [
    Alcotest.test_case "task and edge counts" `Quick (fun () ->
        let n = 10 in
        let count build = O.Graph.n_tasks (build ~n ~ccr:1.) in
        check_int "fork-join" (n + 2) (count O.Kernels.fork_join);
        check_int "laplace" (n * n) (count O.Kernels.laplace);
        check_int "stencil" (n * n) (count O.Kernels.stencil);
        check_int "lu" (n * (n - 1) / 2) (count O.Kernels.lu);
        check_int "doolittle" (n * (n - 1) / 2) (count O.Kernels.doolittle);
        check_int "ldmt" ((n - 1) * (n + 2) / 2) (count O.Kernels.ldmt));
    Alcotest.test_case "all kernels satisfy data = ccr * w(src)" `Quick
      (fun () ->
        List.iter
          (fun suite ->
            let g = suite.O.Suite.build ~n:8 ~ccr:10. in
            check_bool suite.O.Suite.name true (ccr_holds g 10.))
          O.Suite.all);
    Alcotest.test_case "invariants hold on every kernel" `Quick (fun () ->
        List.iter
          (fun suite ->
            O.Graph.check_invariants (suite.O.Suite.build ~n:9 ~ccr:3.))
          O.Suite.all);
  ]

let weight_tests =
  [
    Alcotest.test_case "LU weights fall with the level (N - k)" `Quick (fun () ->
        let n = 8 in
        let g = O.Kernels.lu ~n ~ccr:1. in
        (* elimination level k has n - k tasks of weight n - k *)
        let histogram = Hashtbl.create 8 in
        for v = 0 to O.Graph.n_tasks g - 1 do
          let w = int_of_float (O.Graph.weight g v) in
          Hashtbl.replace histogram w
            (1 + Option.value ~default:0 (Hashtbl.find_opt histogram w))
        done;
        for k = 1 to n - 1 do
          check_int
            (Printf.sprintf "weight %d multiplicity" (n - k))
            (n - k)
            (Option.value ~default:0 (Hashtbl.find_opt histogram (n - k)))
        done;
        (* first task (1,2) has weight n-1 *)
        check_float "level 1" (float_of_int (n - 1)) (O.Graph.weight g 0));
    Alcotest.test_case "DOOLITTLE/LDMt weights grow with the level" `Quick
      (fun () ->
        List.iter
          (fun build ->
            let g = build ~n:8 ~ccr:1. in
            (* some task has weight 1 (level 1) and some has weight 7 *)
            let weights =
              List.init (O.Graph.n_tasks g) (fun v -> O.Graph.weight g v)
            in
            check_float "min weight 1" 1. (List.fold_left min infinity weights);
            check_float "max weight n-1" 7. (List.fold_left max 0. weights))
          [ O.Kernels.doolittle; O.Kernels.ldmt ]);
    Alcotest.test_case "unit-weight kernels" `Quick (fun () ->
        List.iter
          (fun build ->
            let g = build ~n:6 ~ccr:1. in
            for v = 0 to O.Graph.n_tasks g - 1 do
              check_float "w = 1" 1. (O.Graph.weight g v)
            done)
          [ O.Kernels.fork_join; O.Kernels.laplace; O.Kernels.stencil ]);
  ]

let shape_tests =
  [
    Alcotest.test_case "fork-join is source -> n -> sink" `Quick (fun () ->
        let g = O.Kernels.fork_join ~n:5 ~ccr:1. in
        Alcotest.(check (list int)) "entry" [ 0 ] (O.Graph.entry_tasks g);
        Alcotest.(check (list int)) "exit" [ 6 ] (O.Graph.exit_tasks g);
        check_int "source degree" 5 (O.Graph.out_degree g 0);
        check_int "sink degree" 5 (O.Graph.in_degree g 6);
        check_int "depth" 3 (O.Levels.depth g));
    Alcotest.test_case "laplace grid has the wavefront shape" `Quick (fun () ->
        let n = 5 in
        let g = O.Kernels.laplace ~n ~ccr:1. in
        Alcotest.(check (list int)) "single entry" [ 0 ] (O.Graph.entry_tasks g);
        Alcotest.(check (list int))
          "single exit"
          [ (n * n) - 1 ]
          (O.Graph.exit_tasks g);
        check_int "depth = 2n-1" ((2 * n) - 1) (O.Levels.depth g);
        check_int "width = n" n (O.Levels.width g);
        check_int "interior in-degree" 2 (O.Graph.in_degree g ((n * 1) + 1)));
    Alcotest.test_case "stencil rows depend on three neighbours" `Quick
      (fun () ->
        let n = 5 in
        let g = O.Kernels.stencil ~n ~ccr:1. in
        check_int "interior in-degree 3" 3 (O.Graph.in_degree g (n + 2));
        check_int "border in-degree 2" 2 (O.Graph.in_degree g n);
        check_int "depth = n" n (O.Levels.depth g);
        check_int "row width" n (O.Levels.width g));
    Alcotest.test_case "lu is a pipelined triangle" `Quick (fun () ->
        let g = O.Kernels.lu ~n:6 ~ccr:1. in
        Alcotest.(check (list int)) "single entry (1,2)" [ 0 ] (O.Graph.entry_tasks g);
        let max_out =
          List.fold_left
            (fun acc v -> max acc (O.Graph.out_degree g v))
            0
            (List.init (O.Graph.n_tasks g) Fun.id)
        in
        check_bool "bounded out-degree" true (max_out <= 2));
    Alcotest.test_case "minimum sizes are enforced" `Quick (fun () ->
        check_bool "lu n=1 rejected" true
          (try
             ignore (O.Kernels.lu ~n:1 ~ccr:1.);
             false
           with Invalid_argument _ -> true);
        check_bool "fork-join n=0 rejected" true
          (try
             ignore (O.Kernels.fork_join ~n:0 ~ccr:1.);
             false
           with Invalid_argument _ -> true));
    Alcotest.test_case "suite lookup" `Quick (fun () ->
        check_int "six testbeds" 6 (List.length O.Suite.all);
        check_bool "case-insensitive" true
          ((O.Suite.find "LU").O.Suite.name = "lu");
        check_bool "unknown rejected" true
          (try
             ignore (O.Suite.find "qr");
             false
           with Invalid_argument _ -> true));
    Alcotest.test_case "toy graph matches Figure 3" `Quick (fun () ->
        let g = O.Toy.graph () in
        check_int "10 tasks" 10 (O.Graph.n_tasks g);
        check_int "10 edges" 10 (O.Graph.n_edges g);
        Alcotest.(check (list int)) "a0 children" [ 2; 3; 4; 5; 6 ] (O.Graph.succs g 0);
        Alcotest.(check (list int)) "b0 children" [ 5; 6; 7; 8; 9 ] (O.Graph.succs g 1);
        check_int "names align" 10 (Array.length O.Toy.task_names));
    Alcotest.test_case "fork recogniser" `Quick (fun () ->
        check_bool "fork recognised" true
          (O.Fork_exact.of_graph (O.Fork.example_fig1 ()) <> None);
        check_bool "non-fork rejected" true
          (O.Fork_exact.of_graph (O.Kernels.laplace ~n:3 ~ccr:1.) = None));
  ]

let suite = size_tests @ weight_tests @ shape_tests
