(* Vec, Pqueue, Stats, Rng, Table. *)

module O = Onesched
module Vec = Prelude.Vec
module Pqueue = Prelude.Pqueue
module Stats = Prelude.Stats
open Util

let vec_tests =
  [
    Alcotest.test_case "push/pop/last" `Quick (fun () ->
        let v = Vec.create () in
        List.iter (Vec.push v) [ 1; 2; 3 ];
        check_int "len" 3 (Vec.length v);
        check_int "last" 3 (Vec.last v);
        check_int "pop" 3 (Vec.pop v);
        check_int "len after pop" 2 (Vec.length v));
    Alcotest.test_case "insert and remove keep order" `Quick (fun () ->
        let v = Vec.of_list [ 1; 3; 4 ] in
        Vec.insert v 1 2;
        Alcotest.(check (list int)) "inserted" [ 1; 2; 3; 4 ] (Vec.to_list v);
        Vec.remove v 0;
        Alcotest.(check (list int)) "removed" [ 2; 3; 4 ] (Vec.to_list v);
        Vec.insert v (Vec.length v) 9;
        Alcotest.(check (list int)) "appended" [ 2; 3; 4; 9 ] (Vec.to_list v));
    Alcotest.test_case "bounds checked" `Quick (fun () ->
        let v = Vec.of_list [ 1 ] in
        Alcotest.check_raises "get" (Invalid_argument "Vec: index out of bounds")
          (fun () -> ignore (Vec.get v 1));
        Alcotest.check_raises "pop empty" (Invalid_argument "Vec.pop: empty")
          (fun () ->
            let e = Vec.create () in
            ignore (Vec.pop (e : int Vec.t))));
    qtest "of_list/to_list roundtrip" QCheck2.Gen.(list small_int) (fun l ->
        Vec.to_list (Vec.of_list l) = l);
    qtest "lower_bound is the sorted insertion point"
      QCheck2.Gen.(tup2 (list small_int) small_int)
      (fun (l, x) ->
        let sorted = List.sort compare l in
        let v = Vec.of_list sorted in
        let i = Vec.lower_bound v ~compare x in
        let before = List.filteri (fun j _ -> j < i) sorted in
        let after = List.filteri (fun j _ -> j >= i) sorted in
        List.for_all (fun y -> compare y x < 0) before
        && List.for_all (fun y -> compare y x >= 0) after);
    qtest "sort sorts" QCheck2.Gen.(list small_int) (fun l ->
        let v = Vec.of_list l in
        Vec.sort compare v;
        Vec.to_list v = List.sort compare l);
  ]

let pqueue_tests =
  [
    Alcotest.test_case "orders by priority" `Quick (fun () ->
        let q = Pqueue.of_list ~compare [ 5; 1; 4; 2; 3 ] in
        Alcotest.(check (list int)) "sorted" [ 1; 2; 3; 4; 5 ]
          (Pqueue.to_sorted_list q);
        check_int "pop min" 1 (Pqueue.pop_exn q);
        check_int "peek next" 2 (Option.get (Pqueue.peek q)));
    Alcotest.test_case "empty behaviour" `Quick (fun () ->
        let q = Pqueue.create ~compare:Int.compare in
        check_bool "is_empty" true (Pqueue.is_empty q);
        check_bool "pop none" true (Pqueue.pop q = None));
    qtest ~count:200 "drains in sorted order" QCheck2.Gen.(list small_int)
      (fun l ->
        let q = Pqueue.of_list ~compare l in
        Pqueue.to_sorted_list q = List.sort compare l);
    qtest ~count:200 "interleaved adds keep the heap property"
      QCheck2.Gen.(list (tup2 bool small_int))
      (fun ops ->
        let q = Pqueue.create ~compare:Int.compare in
        let model = ref [] in
        List.for_all
          (fun (push, x) ->
            if push || !model = [] then begin
              Pqueue.add q x;
              model := List.sort compare (x :: !model);
              true
            end
            else begin
              let got = Pqueue.pop_exn q in
              let expect = List.hd !model in
              model := List.tl !model;
              got = expect
            end)
          ops);
  ]

let stats_tests =
  [
    Alcotest.test_case "means" `Quick (fun () ->
        check_float "mean" 2. (Stats.mean [ 1.; 2.; 3. ]);
        check_float "harmonic" 3. (Stats.harmonic_mean [ 2.; 3.; 6. ]);
        check_float "stdev" 1. (Stats.stdev [ 1.; 2.; 3. ]));
    Alcotest.test_case "gcd/lcm" `Quick (fun () ->
        check_int "gcd" 6 (Stats.gcd 12 18);
        check_int "lcm" 36 (Stats.lcm 12 18);
        check_int "lcm_list paper" 30 (Stats.lcm_list [ 6; 10; 15 ]));
    Alcotest.test_case "percentile" `Quick (fun () ->
        check_float "median" 2. (Stats.percentile 50. [ 1.; 2.; 3. ]);
        check_float "p0" 1. (Stats.percentile 0. [ 3.; 1.; 2. ]);
        check_float "p100" 3. (Stats.percentile 100. [ 3.; 1.; 2. ]));
    qtest "harmonic mean <= arithmetic mean"
      QCheck2.Gen.(list_size (int_range 1 10) (int_range 1 100))
      (fun l ->
        let fs = List.map float_of_int l in
        Stats.harmonic_mean fs <= Stats.mean fs +. 1e-9);
    qtest "fequal tolerates tiny error" QCheck2.Gen.(float_bound_exclusive 1e6)
      (fun x -> Stats.fequal x (x +. (x *. 1e-12)));
  ]

let rng_tests =
  [
    Alcotest.test_case "deterministic across creations" `Quick (fun () ->
        let a = O.Rng.create ~seed:7 and b = O.Rng.create ~seed:7 in
        for _ = 1 to 100 do
          check_int "same stream" (O.Rng.int a 1000) (O.Rng.int b 1000)
        done);
    Alcotest.test_case "split diverges" `Quick (fun () ->
        let a = O.Rng.create ~seed:7 in
        let b = O.Rng.split a in
        let xs = List.init 20 (fun _ -> O.Rng.int a 1_000_000) in
        let ys = List.init 20 (fun _ -> O.Rng.int b 1_000_000) in
        check_bool "different streams" true (xs <> ys));
    qtest ~count:300 "int respects bounds" QCheck2.Gen.(tup2 (int_bound 1000) (int_range 1 50))
      (fun (seed, bound) ->
        let rng = O.Rng.create ~seed in
        let x = O.Rng.int rng bound in
        x >= 0 && x < bound);
    qtest ~count:100 "shuffle is a permutation"
      QCheck2.Gen.(tup2 (int_bound 1000) (list small_int))
      (fun (seed, l) ->
        let rng = O.Rng.create ~seed in
        let a = Array.of_list l in
        O.Rng.shuffle rng a;
        List.sort compare (Array.to_list a) = List.sort compare l);
  ]

let table_tests =
  [
    Alcotest.test_case "arity enforced" `Quick (fun () ->
        let t = O.Table.create ~columns:[ "a"; "b" ] in
        Alcotest.check_raises "bad row"
          (Invalid_argument "Table.add_row: arity mismatch") (fun () ->
            O.Table.add_row t [ "1" ]));
    Alcotest.test_case "renders all cells" `Quick (fun () ->
        let t = O.Table.create ~columns:[ "name"; "x" ] in
        O.Table.add_row t [ "alpha"; "1.5" ];
        O.Table.add_row t [ "b"; "22" ];
        let s = O.Table.to_string t in
        List.iter
          (fun cell ->
            check_bool cell true
              (String.length s > 0
              && contains s cell))
          [ "name"; "alpha"; "1.5"; "22" ]);
    Alcotest.test_case "csv escapes" `Quick (fun () ->
        let t = O.Table.create ~columns:[ "a" ] in
        O.Table.add_row t [ "x,y" ];
        check_bool "quoted" true (contains (O.Table.to_csv t) "\"x,y\""));
  ]

let suite = vec_tests @ pqueue_tests @ stats_tests @ rng_tests @ table_tests
