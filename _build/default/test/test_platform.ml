(* Platforms: validation, routing, averaged quantities, the paper platform. *)

module O = Onesched
open Util

let paper_tests =
  [
    Alcotest.test_case "paper platform shape" `Quick (fun () ->
        let plat = O.Platform.paper_platform () in
        check_int "p" 10 (O.Platform.p plat);
        Alcotest.(check (array (float 0.)))
          "cycle times"
          [| 6.; 6.; 6.; 6.; 6.; 10.; 10.; 10.; 15.; 15. |]
          (O.Platform.cycle_times plat);
        check_float "fastest" 6. (O.Platform.min_cycle_time plat);
        check_float "bound 7.6" 7.6 (O.Platform.speedup_bound plat);
        check_float "unit links" 1. (O.Platform.link plat ~src:0 ~dst:9);
        check_float "zero diagonal" 0. (O.Platform.link plat ~src:3 ~dst:3));
  ]

let validation_tests =
  [
    Alcotest.test_case "rejects bad inputs" `Quick (fun () ->
        Alcotest.check_raises "no procs" (Invalid_argument "Platform: no processors")
          (fun () ->
            ignore (O.Platform.create ~cycle_times:[||] ~link:[||] ()));
        Alcotest.check_raises "zero cycle"
          (Invalid_argument "Platform: cycle-times must be positive") (fun () ->
            ignore (O.Platform.fully_connected ~cycle_times:[| 0. |] ~link_cost:1. ()));
        Alcotest.check_raises "diag"
          (Invalid_argument "Platform: link diagonal must be zero") (fun () ->
            ignore
              (O.Platform.create ~cycle_times:[| 1.; 1. |]
                 ~link:[| [| 1.; 1. |]; [| 1.; 0. |] |]
                 ())));
    Alcotest.test_case "disconnected topology rejected" `Quick (fun () ->
        Alcotest.check_raises "disconnected"
          (Invalid_argument "Platform.with_topology: disconnected interconnect")
          (fun () ->
            ignore
              (O.Platform.with_topology ~cycle_times:[| 1.; 1.; 1. |]
                 ~links:[ (0, 1, 1.) ] ())));
  ]

let routing_tests =
  [
    Alcotest.test_case "routes follow cheapest paths" `Quick (fun () ->
        let plat =
          O.Platform.with_topology ~cycle_times:[| 1.; 1.; 1.; 1. |]
            ~links:[ (0, 1, 1.); (1, 2, 1.); (2, 3, 1.); (0, 3, 10.) ]
            ()
        in
        Alcotest.(check (list (pair int int)))
          "multi-hop route" [ (0, 1); (1, 2); (2, 3) ]
          (O.Platform.route plat ~src:0 ~dst:3);
        check_float "route cost" 3. (O.Platform.link plat ~src:0 ~dst:3);
        Alcotest.(check (list (pair int int)))
          "self route" [] (O.Platform.route plat ~src:2 ~dst:2);
        check_float "direct hop kept" 1. (O.Platform.hop_cost plat ~src:0 ~dst:1);
        Alcotest.check_raises "no direct link"
          (Invalid_argument "Platform.hop_cost: no direct link") (fun () ->
            ignore (O.Platform.hop_cost plat ~src:0 ~dst:2)));
    Alcotest.test_case "fully connected routes are single hops" `Quick (fun () ->
        let plat = O.Platform.homogeneous ~p:4 ~link_cost:2. in
        Alcotest.(check (list (pair int int)))
          "one hop" [ (1, 3) ]
          (O.Platform.route plat ~src:1 ~dst:3));
  ]

let averaging_tests =
  [
    Alcotest.test_case "aggregate speed and fractions" `Quick (fun () ->
        let plat = O.Platform.paper_platform () in
        check_float "aggregate" (5. /. 6. +. 0.3 +. (2. /. 15.))
          (O.Platform.aggregate_speed plat);
        let fracs =
          List.init 10 (fun i -> O.Platform.balanced_fraction plat i)
        in
        check_float "fractions sum to 1" 1. (List.fold_left ( +. ) 0. fracs));
    Alcotest.test_case "avg execution time matches the paper's formula"
      `Quick (fun () ->
        let plat = O.Platform.paper_platform () in
        (* p * w / sum(1/t): 10 * 1 / (19/15) = 150/19 *)
        check_float "unit task" (150. /. 19.) (O.Platform.avg_execution_time plat 1.));
    Alcotest.test_case "avg link cost is harmonic" `Quick (fun () ->
        let plat = O.Platform.homogeneous ~p:3 ~link_cost:4. in
        check_float "uniform" 4. (O.Platform.avg_link_cost plat);
        let single = O.Platform.homogeneous ~p:1 ~link_cost:1. in
        check_float "single proc" 0. (O.Platform.avg_link_cost single));
  ]

let model_tests =
  [
    Alcotest.test_case "model names roundtrip" `Quick (fun () ->
        List.iter
          (fun m ->
            check_bool (O.Comm_model.name m) true
              (O.Comm_model.equal m (O.Comm_model.of_name (O.Comm_model.name m))))
          O.Comm_model.all);
    Alcotest.test_case "port restriction flags" `Quick (fun () ->
        check_bool "macro" false (O.Comm_model.restricts_ports O.Comm_model.macro_dataflow);
        check_bool "one-port" true (O.Comm_model.restricts_ports O.Comm_model.one_port);
        check_bool "unknown name" true
          (try
             ignore (O.Comm_model.of_name "bogus");
             false
           with Invalid_argument _ -> true));
  ]

let suite =
  paper_tests @ validation_tests @ routing_tests @ averaging_tests @ model_tests
