  $ ../../bin/schedcli.exe list | head -8
  $ ../../bin/schedcli.exe analyze -t lu -n 10
  $ ../../bin/schedcli.exe figures --only e3
  $ cat > app.tg <<'TG'
  > graph demo
  > task 0 1
  > task 1 2
  > task 2 2
  > edge 0 1 3
  > edge 0 2 3
  > TG
  $ cat > duo.plat <<'PLAT'
  > platform duo
  > cycle-times 1 1
  > link-cost 1
  > PLAT
  $ ../../bin/schedcli.exe run --graph app.tg --platform duo.plat -H heft 2>&1 | grep -v "scheduled in"
  $ ../../bin/schedcli.exe export -t fork-join -n 3 --format csv | head -3
