test/test_schedule.ml: Alcotest Onesched String Util
