test/test_complexity.ml: Alcotest Array List Onesched QCheck2 Util
