test/test_timeline.ml: Alcotest Array List Onesched QCheck2 Util
