test/test_improvers.ml: Alcotest Array List Onesched Prelude QCheck2 String Util
