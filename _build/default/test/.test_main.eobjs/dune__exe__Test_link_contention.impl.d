test/test_link_contention.ml: Alcotest Array List Onesched QCheck2 Util
