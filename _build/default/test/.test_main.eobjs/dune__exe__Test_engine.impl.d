test/test_engine.ml: Alcotest List Onesched Util
