test/test_experiments.ml: Alcotest List Onesched Prelude String Util
