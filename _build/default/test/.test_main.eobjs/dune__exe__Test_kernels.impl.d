test/test_kernels.ml: Alcotest Array Fun Hashtbl List Onesched Option Prelude Printf Util
