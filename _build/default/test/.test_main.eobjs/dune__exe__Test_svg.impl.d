test/test_svg.ml: Alcotest List Onesched Printf QCheck2 String Util
