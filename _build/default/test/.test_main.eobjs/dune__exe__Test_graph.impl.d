test/test_graph.ml: Alcotest Array Fun List Onesched Printf QCheck2 Util
