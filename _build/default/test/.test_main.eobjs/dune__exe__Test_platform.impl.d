test/test_platform.ml: Alcotest List Onesched Util
