test/util.ml: Alcotest Lazy List Onesched Printf QCheck2 QCheck_alcotest String
