test/test_heuristics.ml: Alcotest Array Fun List Onesched Option Prelude Printf QCheck2 Util
