test/test_simkit2.ml: Alcotest Array Filename Fun List Onesched Prelude Printf QCheck2 Sys Util
