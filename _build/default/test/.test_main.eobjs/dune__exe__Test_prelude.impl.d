test/test_prelude.ml: Alcotest Array Int List Onesched Option Prelude QCheck2 String Util
