test/test_simkit.ml: Alcotest Onesched Prelude QCheck2 Util
