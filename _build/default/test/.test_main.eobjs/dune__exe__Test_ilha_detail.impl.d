test/test_ilha_detail.ml: Alcotest Array List Onesched QCheck2 Util
