test/test_unrelated.ml: Alcotest Array List Onesched Printf QCheck2 Util
