test/test_extensions.ml: Alcotest Array List Onesched Prelude QCheck2 String Util
