(* The NP-hardness machinery: 2-PARTITION solvers against brute force and
   both reductions' equivalences + constructive directions. *)

module O = Onesched
open Util

let brute_force_solvable items =
  let n = Array.length items in
  let total = Array.fold_left ( + ) 0 items in
  total mod 2 = 0
  && begin
       let found = ref false in
       for mask = 1 to (1 lsl n) - 2 do
         let s = ref 0 in
         for i = 0 to n - 1 do
           if mask land (1 lsl i) <> 0 then s := !s + items.(i)
         done;
         if 2 * !s = total then found := true
       done;
       n >= 2 && !found
     end

let brute_force_balanced items =
  let n = Array.length items in
  let total = Array.fold_left ( + ) 0 items in
  total mod 2 = 0 && n mod 2 = 0
  && begin
       let found = ref false in
       for mask = 0 to (1 lsl n) - 1 do
         let s = ref 0 and c = ref 0 in
         for i = 0 to n - 1 do
           if mask land (1 lsl i) <> 0 then begin
             s := !s + items.(i);
             incr c
           end
         done;
         if 2 * !s = total && 2 * !c = n then found := true
       done;
       !found
     end

let items_gen =
  QCheck2.Gen.(list_size (int_range 1 9) (int_range 1 12))

let partition_tests =
  [
    qtest ~count:300 "solve agrees with brute force" items_gen (fun items ->
        let items = Array.of_list items in
        let inst = O.Two_partition.create items in
        O.Two_partition.is_solvable inst = brute_force_solvable items
        ||
        (* singleton sets: DP finds the empty/full split only when sum is
           0, never for positive items; brute force above excludes the
           trivial masks, so align on n >= 2 *)
        Array.length items < 2);
    qtest ~count:300 "solve returns real witnesses" items_gen (fun items ->
        let inst = O.Two_partition.create (Array.of_list items) in
        match O.Two_partition.solve inst with
        | None -> true
        | Some a1 -> O.Two_partition.verify inst a1);
    qtest ~count:300 "balanced solve agrees with brute force" items_gen
      (fun items ->
        let items = Array.of_list items in
        let inst = O.Two_partition.create items in
        O.Two_partition.is_balanced_solvable inst = brute_force_balanced items);
    qtest ~count:300 "balanced witnesses have the right cardinality" items_gen
      (fun items ->
        let items = Array.of_list items in
        let inst = O.Two_partition.create items in
        match O.Two_partition.solve_balanced inst with
        | None -> true
        | Some a1 ->
            O.Two_partition.verify inst a1
            && 2 * List.length a1 = Array.length items);
    Alcotest.test_case "rejects bad instances" `Quick (fun () ->
        Alcotest.check_raises "empty" (Invalid_argument "Two_partition.create: empty")
          (fun () -> ignore (O.Two_partition.create [||]));
        Alcotest.check_raises "non-positive"
          (Invalid_argument "Two_partition.create: non-positive item") (fun () ->
            ignore (O.Two_partition.create [| 3; 0 |])));
  ]

let small_items_gen = QCheck2.Gen.(list_size (int_range 2 5) (int_range 1 9))

let fork_sched_tests =
  [
    qtest ~count:40 "Thm 1: decide iff SHIFTED 2-PARTITION" small_items_gen
      (fun items ->
        (* The reduction literally encodes 2-PARTITION of M + a_i + 1
           (see Fork_sched's reproduction note). *)
        let inst = O.Two_partition.create (Array.of_list items) in
        let red = O.Fork_sched.reduce inst in
        O.Fork_sched.decide red
        = O.Two_partition.is_solvable (O.Fork_sched.shifted_instance red));
    qtest ~count:40 "Thm 1: balanced original implies schedulable"
      small_items_gen
      (fun items ->
        let inst = O.Two_partition.create (Array.of_list items) in
        (not (O.Two_partition.is_balanced_solvable inst))
        || O.Fork_sched.decide (O.Fork_sched.reduce inst));
    Alcotest.test_case "Thm 1: the paper's literal claim has a counterexample"
      `Quick (fun () ->
        (* [8;5;9;1;1] admits no 2-partition (balanced or not: sum is even
           but no subset hits 12 with the cardinality the offsets force),
           yet the shifted items 18+19 = 15+11+11 split evenly, so the
           constructed FORK-SCHED instance IS schedulable within T. *)
        let inst = O.Two_partition.create [| 8; 5; 9; 1; 1 |] in
        let red = O.Fork_sched.reduce inst in
        check_bool "schedulable" true (O.Fork_sched.decide red);
        check_bool "no balanced partition" false
          (O.Two_partition.is_balanced_solvable inst));
    qtest ~count:40 "Thm 1: constructive schedule is valid and in bound"
      small_items_gen
      (fun items ->
        let inst = O.Two_partition.create (Array.of_list items) in
        match O.Two_partition.solve_balanced inst with
        | None -> true
        | Some a1 ->
            let red = O.Fork_sched.reduce inst in
            let sched = O.Fork_sched.schedule_of_partition red ~a1 in
            O.Validate.is_valid sched
            && O.Schedule.makespan sched
               <= red.O.Fork_sched.time_bound +. 1e-6);
    Alcotest.test_case "Thm 1: weights have the wmin <= w <= 2 wmin shape"
      `Quick (fun () ->
        let inst = O.Two_partition.create [| 2; 5; 3; 4 |] in
        let red = O.Fork_sched.reduce inst in
        let g = red.O.Fork_sched.graph in
        (* children 1..n: w_i = 10 (M + a_i + 1); closers: 10 (M + m) + 1 *)
        check_float "w1" 80. (O.Graph.weight g 1);
        check_float "closers" 71. (O.Graph.weight g 5);
        check_float "parent weight 0" 0. (O.Graph.weight g 0);
        let wmin = O.Graph.weight g 5 in
        List.iter
          (fun i ->
            let w = O.Graph.weight g i in
            check_bool "range" true (w >= wmin && w <= 2. *. wmin))
          [ 1; 2; 3; 4 ];
        (* T = half the original weights + 2 wmin *)
        check_float "bound" ((80. +. 110. +. 90. +. 100.) /. 2. +. 142.)
          red.O.Fork_sched.time_bound);
  ]

let comm_sched_tests =
  [
    qtest ~count:40 "Thm 2: decide iff 2-PARTITION" small_items_gen
      (fun items ->
        let inst = O.Two_partition.create (Array.of_list items) in
        let red = O.Comm_sched.reduce inst in
        O.Comm_sched.decide red = O.Two_partition.is_solvable inst);
    qtest ~count:40 "Thm 2: constructive schedule is valid and in bound"
      small_items_gen
      (fun items ->
        let inst = O.Two_partition.create (Array.of_list items) in
        match O.Two_partition.solve inst with
        | None -> true
        | Some a1 ->
            let red = O.Comm_sched.reduce inst in
            let sched = O.Comm_sched.schedule_of_partition red ~a1 in
            O.Validate.is_valid sched
            && O.Schedule.makespan sched <= red.O.Comm_sched.time_bound +. 1e-6);
    Alcotest.test_case "Thm 2: instance shape" `Quick (fun () ->
        let inst = O.Two_partition.create [| 1; 2; 3 |] in
        let red = O.Comm_sched.reduce inst in
        let g = red.O.Comm_sched.graph in
        check_int "3n+1 tasks" 10 (O.Graph.n_tasks g);
        check_int "2n edges" 6 (O.Graph.n_edges g);
        check_float "bound 2S" 6. red.O.Comm_sched.time_bound;
        check_float "all zero weights" 0. (O.Graph.total_weight g));
  ]

let suite = partition_tests @ fork_sched_tests @ comm_sched_tests
