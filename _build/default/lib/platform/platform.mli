(** Target computing resources: processors and the interconnect.

    A platform is the paper's [P = (P, t, link)] (§2.1): [p] processors with
    cycle-times [t_i] (the time to execute one unit of task weight — the
    inverse of relative speed), and a [link] matrix giving the time to ship
    one data item between each processor pair (zero diagonal).

    The interconnect may additionally carry a sparse {e topology}: when two
    processors have no direct link, messages are routed along a fixed
    shortest path of direct links (§4.3 notes the one-port machinery extends
    to routed messages hop by hop).  Fully-connected platforms — the paper's
    experimental setting — have single-hop routes everywhere. *)

type t

(** [create ?name ~cycle_times ~link ()] — [link] must be square of size
    [p], zero on the diagonal, non-negative elsewhere.
    @raise Invalid_argument otherwise. *)
val create : ?name:string -> cycle_times:float array -> link:float array array -> unit -> t

(** [fully_connected ?name ~cycle_times ~link_cost ()] — uniform off-diagonal
    link cost. *)
val fully_connected :
  ?name:string -> cycle_times:float array -> link_cost:float -> unit -> t

(** [homogeneous ~p ~link_cost] — [p] unit-speed processors. *)
val homogeneous : p:int -> link_cost:float -> t

(** The experimental platform of §5.2: five processors of cycle-time 6,
    three of cycle-time 10, two of cycle-time 15, fully connected with unit
    link cost (communication volumes already carry the ratio [c]). *)
val paper_platform : unit -> t

(** [with_topology ?name ~cycle_times ~links ()] — sparse interconnect given
    as undirected direct links [(i, j, cost)]; missing pairs are routed over
    the cheapest path (Floyd–Warshall) and [route] reports the hop
    sequence.
    @raise Invalid_argument if the link graph is disconnected. *)
val with_topology :
  ?name:string -> cycle_times:float array -> links:(int * int * float) list -> unit -> t

(** [ring ~cycle_times ~link_cost ()] — processors in a cycle; messages
    between non-neighbours are routed around the shorter arc. *)
val ring : cycle_times:float array -> link_cost:float -> unit -> t

(** [star ~cycle_times ~spoke_cost ()] — processor 0 is the hub; every
    other processor links only to it, so peripheral pairs route through
    the hub (two hops) and contend for its ports under one-port models. *)
val star : cycle_times:float array -> spoke_cost:float -> unit -> t

(** [grid2d ~rows ~cols ~cycle_time ~link_cost ()] — a [rows x cols] mesh
    of identical processors with 4-neighbour links (the classical
    mesh-connected multicomputer).
    @raise Invalid_argument when [rows * cols < 1]. *)
val grid2d : rows:int -> cols:int -> cycle_time:float -> link_cost:float -> unit -> t

(** [random_heterogeneous rng ~p ~min_cycle ~max_cycle ~link_cost] —
    fully-connected platform with integer cycle-times drawn uniformly from
    [[min_cycle, max_cycle]] (integer so {!val:Heuristics} perfect-balance
    chunks stay defined); deterministic in [rng]. *)
val random_heterogeneous :
  Prelude.Rng.t -> p:int -> min_cycle:int -> max_cycle:int -> link_cost:float -> t

val name : t -> string

(** Number of processors. *)
val p : t -> int

val cycle_time : t -> int -> float
val cycle_times : t -> float array

(** [link t ~src ~dst] is the per-data-item cost of the {e route} from
    [src] to [dst] (sum of hop costs for routed platforms). *)
val link : t -> src:int -> dst:int -> float

(** [route t ~src ~dst] is the sequence of direct hops [(q, r)] a message
    follows; [[ (src, dst) ]] on fully-connected platforms and [[]] when
    [src = dst]. *)
val route : t -> src:int -> dst:int -> (int * int) list

(** [hop_cost t ~src ~dst] is the per-item cost of the {e direct} link used
    by one hop.
    @raise Invalid_argument when no direct link exists. *)
val hop_cost : t -> src:int -> dst:int -> float

(** Fastest (minimum) cycle-time; the paper's sequential baseline. *)
val min_cycle_time : t -> float

(** [aggregate_speed t] is [sum over i of 1 / t_i]: the work per time-unit
    of the whole platform under perfect load balance (§4.1). *)
val aggregate_speed : t -> float

(** Fraction of total work processor [i] should receive under perfect load
    balance: [c_i = (1/t_i) / aggregate_speed] (§4.1). *)
val balanced_fraction : t -> int -> float

(** Harmonic-average link cost over ordered pairs [q <> r]; the paper's
    rank averaging replaces [link(q,r)] by this quantity (§4.1). *)
val avg_link_cost : t -> float

(** [avg_execution_time t w] is the paper's averaged execution estimate
    [p * w / sum(1/t_i)] used in bottom levels (§4.1). *)
val avg_execution_time : t -> float -> float

(** Maximum achievable speedup versus the fastest processor assuming
    perfect balance and free communication: [min_cycle_time * aggregate_speed]
    — 7.6 on the paper platform (§5.2). *)
val speedup_bound : t -> float

val pp : Format.formatter -> t -> unit

(** {2 Plain-text descriptions}

    Line-oriented, [#] comments.  One [cycle-times] line, then the
    interconnect as either a uniform [link-cost c] (fully connected), a
    set of [link i j c] lines (sparse topology, routed), or explicit
    [row c0 c1 ...] lines forming the full link matrix:

    {v
    platform my-cluster
    cycle-times 6 6 6 6 6 10 10 10 15 15
    link-cost 1
    v} *)

(** @raise Invalid_argument with a line-numbered message on malformed
    input. *)
val of_description : string -> t

(** Emits the matrix ([row]) form — {!of_description} inverts it for any
    platform. *)
val to_description : t -> string
