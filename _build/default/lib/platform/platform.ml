type t = {
  name : string;
  cycle_times : float array;
  (* Route cost (sum over hops) for every ordered pair. *)
  route_cost : float array array;
  (* Direct-link cost; infinity when no direct link. *)
  direct : float array array;
  (* next.(q).(r) is the first hop on the route q -> r (-1 when q = r). *)
  next_hop : int array array;
}

let validate_cycle_times cycle_times =
  if Array.length cycle_times = 0 then invalid_arg "Platform: no processors";
  Array.iter
    (fun ct ->
      if ct <= 0. || Float.is_nan ct then
        invalid_arg "Platform: cycle-times must be positive")
    cycle_times

let create ?(name = "platform") ~cycle_times ~link () =
  validate_cycle_times cycle_times;
  let p = Array.length cycle_times in
  if Array.length link <> p then invalid_arg "Platform: link matrix not square";
  Array.iteri
    (fun i row ->
      if Array.length row <> p then invalid_arg "Platform: link matrix not square";
      Array.iteri
        (fun j c ->
          if i = j && c <> 0. then
            invalid_arg "Platform: link diagonal must be zero";
          if c < 0. || Float.is_nan c then
            invalid_arg "Platform: negative link cost")
        row)
    link;
  let direct = Array.map Array.copy link in
  let next_hop =
    Array.init p (fun i -> Array.init p (fun j -> if i = j then -1 else j))
  in
  {
    name;
    cycle_times = Array.copy cycle_times;
    route_cost = Array.map Array.copy link;
    direct;
    next_hop;
  }

let fully_connected ?(name = "fully-connected") ~cycle_times ~link_cost () =
  let p = Array.length cycle_times in
  let link =
    Array.init p (fun i -> Array.init p (fun j -> if i = j then 0. else link_cost))
  in
  create ~name ~cycle_times ~link ()

let homogeneous ~p ~link_cost =
  if p < 1 then invalid_arg "Platform.homogeneous: p < 1";
  fully_connected ~name:"homogeneous" ~cycle_times:(Array.make p 1.) ~link_cost ()

let paper_platform () =
  let cycle_times =
    Array.concat [ Array.make 5 6.; Array.make 3 10.; Array.make 2 15. ]
  in
  fully_connected ~name:"paper-10" ~cycle_times ~link_cost:1. ()

let with_topology ?(name = "topology") ~cycle_times ~links () =
  validate_cycle_times cycle_times;
  let p = Array.length cycle_times in
  let inf = Float.infinity in
  let direct = Array.init p (fun _ -> Array.make p inf) in
  for i = 0 to p - 1 do
    direct.(i).(i) <- 0.
  done;
  List.iter
    (fun (i, j, c) ->
      if i < 0 || i >= p || j < 0 || j >= p || i = j then
        invalid_arg "Platform.with_topology: bad link endpoints";
      if c < 0. || Float.is_nan c then
        invalid_arg "Platform.with_topology: negative link cost";
      direct.(i).(j) <- min direct.(i).(j) c;
      direct.(j).(i) <- min direct.(j).(i) c)
    links;
  (* Floyd-Warshall for cheapest routes and first hops. *)
  let cost = Array.map Array.copy direct in
  let next_hop =
    Array.init p (fun i ->
        Array.init p (fun j ->
            if i = j then -1 else if direct.(i).(j) < inf then j else -2))
  in
  for k = 0 to p - 1 do
    for i = 0 to p - 1 do
      for j = 0 to p - 1 do
        if cost.(i).(k) +. cost.(k).(j) < cost.(i).(j) then begin
          cost.(i).(j) <- cost.(i).(k) +. cost.(k).(j);
          next_hop.(i).(j) <- next_hop.(i).(k)
        end
      done
    done
  done;
  for i = 0 to p - 1 do
    for j = 0 to p - 1 do
      if i <> j && cost.(i).(j) = inf then
        invalid_arg "Platform.with_topology: disconnected interconnect"
    done
  done;
  { name; cycle_times = Array.copy cycle_times; route_cost = cost; direct; next_hop }

let ring ~cycle_times ~link_cost () =
  let p = Array.length cycle_times in
  if p < 2 then invalid_arg "Platform.ring: need at least 2 processors";
  let links = List.init p (fun i -> (i, (i + 1) mod p, link_cost)) in
  with_topology ~name:"ring" ~cycle_times ~links ()

let star ~cycle_times ~spoke_cost () =
  let p = Array.length cycle_times in
  if p < 2 then invalid_arg "Platform.star: need at least 2 processors";
  let links = List.init (p - 1) (fun i -> (0, i + 1, spoke_cost)) in
  with_topology ~name:"star" ~cycle_times ~links ()

let grid2d ~rows ~cols ~cycle_time ~link_cost () =
  if rows < 1 || cols < 1 then invalid_arg "Platform.grid2d: empty grid";
  let p = rows * cols in
  let id r c = (r * cols) + c in
  let links = ref [] in
  for r = 0 to rows - 1 do
    for c = 0 to cols - 1 do
      if c + 1 < cols then links := (id r c, id r (c + 1), link_cost) :: !links;
      if r + 1 < rows then links := (id r c, id (r + 1) c, link_cost) :: !links
    done
  done;
  if p = 1 then fully_connected ~name:"grid2d" ~cycle_times:[| cycle_time |] ~link_cost ()
  else
    with_topology ~name:"grid2d" ~cycle_times:(Array.make p cycle_time)
      ~links:!links ()

let random_heterogeneous rng ~p ~min_cycle ~max_cycle ~link_cost =
  if p < 1 then invalid_arg "Platform.random_heterogeneous: p < 1";
  if min_cycle < 1 || max_cycle < min_cycle then
    invalid_arg "Platform.random_heterogeneous: bad cycle-time range";
  let cycle_times =
    Array.init p (fun _ ->
        float_of_int (Prelude.Rng.int_in rng min_cycle max_cycle))
  in
  fully_connected ~name:"random-heterogeneous" ~cycle_times ~link_cost ()

let name t = t.name
let p t = Array.length t.cycle_times
let cycle_time t i = t.cycle_times.(i)
let cycle_times t = Array.copy t.cycle_times
let link t ~src ~dst = t.route_cost.(src).(dst)

let route t ~src ~dst =
  if src = dst then []
  else begin
    let rec follow q acc =
      if q = dst then List.rev acc
      else begin
        let hop = t.next_hop.(q).(dst) in
        follow hop ((q, hop) :: acc)
      end
    in
    follow src []
  end

let hop_cost t ~src ~dst =
  let c = t.direct.(src).(dst) in
  if c = Float.infinity then invalid_arg "Platform.hop_cost: no direct link";
  c

let min_cycle_time t = Array.fold_left min t.cycle_times.(0) t.cycle_times

let aggregate_speed t =
  Array.fold_left (fun acc ct -> acc +. (1. /. ct)) 0. t.cycle_times

let balanced_fraction t i = 1. /. cycle_time t i /. aggregate_speed t

let avg_link_cost t =
  let n = p t in
  if n = 1 then 0.
  else begin
    let costs = ref [] in
    for q = 0 to n - 1 do
      for r = 0 to n - 1 do
        if q <> r then costs := t.route_cost.(q).(r) :: !costs
      done
    done;
    (* Harmonic mean of link costs; a zero-cost link makes the average 0. *)
    if List.exists (fun c -> c = 0.) !costs then 0.
    else Prelude.Stats.harmonic_mean !costs
  end

let avg_execution_time t w = float_of_int (p t) *. w /. aggregate_speed t
let speedup_bound t = min_cycle_time t *. aggregate_speed t

let description_fail line_no fmt =
  Printf.ksprintf
    (fun msg ->
      invalid_arg (Printf.sprintf "Platform.of_description: line %d: %s" line_no msg))
    fmt

let description_tokens line =
  let line =
    match String.index_opt line '#' with
    | Some i -> String.sub line 0 i
    | None -> line
  in
  String.split_on_char ' ' line
  |> List.concat_map (String.split_on_char '\t')
  |> List.filter (fun t -> t <> "")

let of_description text =
  let name = ref "platform" in
  let cycle_times = ref None in
  let uniform = ref None in
  let links = ref [] in
  let rows = ref [] in
  let parse_float line_no what s =
    match float_of_string_opt s with
    | Some f -> f
    | None -> description_fail line_no "bad %s %S" what s
  in
  let parse_int line_no what s =
    match int_of_string_opt s with
    | Some i -> i
    | None -> description_fail line_no "bad %s %S" what s
  in
  List.iteri
    (fun i line ->
      let line_no = i + 1 in
      match description_tokens line with
      | [] -> ()
      | [ "platform"; n ] -> name := n
      | "cycle-times" :: cts ->
          if cts = [] then description_fail line_no "empty cycle-times";
          cycle_times :=
            Some (Array.of_list (List.map (parse_float line_no "cycle-time") cts))
      | [ "link-cost"; c ] -> uniform := Some (parse_float line_no "link cost" c)
      | [ "link"; a; b; c ] ->
          links :=
            ( parse_int line_no "link endpoint" a,
              parse_int line_no "link endpoint" b,
              parse_float line_no "link cost" c )
            :: !links
      | "row" :: cells ->
          rows := Array.of_list (List.map (parse_float line_no "matrix cell") cells) :: !rows
      | tok :: _ -> description_fail line_no "unknown directive %S" tok)
    (String.split_on_char '\n' text);
  let cycle_times =
    match !cycle_times with
    | Some cts -> cts
    | None -> invalid_arg "Platform.of_description: missing cycle-times"
  in
  match (!uniform, !links, List.rev !rows) with
  | Some c, [], [] -> fully_connected ~name:!name ~cycle_times ~link_cost:c ()
  | None, (_ :: _ as links), [] -> with_topology ~name:!name ~cycle_times ~links ()
  | None, [], (_ :: _ as rows) ->
      create ~name:!name ~cycle_times ~link:(Array.of_list rows) ()
  | None, [], [] -> invalid_arg "Platform.of_description: missing interconnect"
  | _ ->
      invalid_arg
        "Platform.of_description: give exactly one of link-cost, link lines, \
         or row lines"

let to_description t =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "platform %s\n" t.name);
  Buffer.add_string buf "cycle-times";
  Array.iter (fun ct -> Buffer.add_string buf (Printf.sprintf " %.17g" ct)) t.cycle_times;
  Buffer.add_char buf '\n';
  (* The route-cost matrix round-trips exactly: re-parsing yields the same
     pairwise costs with single-hop routes, which is behaviourally
     equivalent for fully-connected platforms and a faithful flattening of
     routed ones. *)
  Array.iter
    (fun row ->
      Buffer.add_string buf "row";
      Array.iter (fun c -> Buffer.add_string buf (Printf.sprintf " %.17g" c)) row;
      Buffer.add_char buf '\n')
    t.route_cost;
  Buffer.contents buf

let pp fmt t =
  Format.fprintf fmt "@[<v>platform %S: %d processors@ cycle-times: %a@]" t.name
    (p t)
    (Format.pp_print_list
       ~pp_sep:(fun f () -> Format.pp_print_string f ", ")
       Format.pp_print_float)
    (Array.to_list t.cycle_times)
