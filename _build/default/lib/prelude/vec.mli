(** Growable arrays.

    A thin, predictable dynamic-array built on [Array], used throughout the
    scheduler for event lists and adjacency construction.  Amortised O(1)
    [push]; O(n) [insert]/[remove] preserving order. *)

type 'a t

val create : ?capacity:int -> unit -> 'a t

(** [make n x] is a vector of length [n] filled with [x]. *)
val make : int -> 'a -> 'a t

val length : 'a t -> int
val is_empty : 'a t -> bool

(** [get v i] and [set v i x] check bounds. *)
val get : 'a t -> int -> 'a

val set : 'a t -> int -> 'a -> unit
val push : 'a t -> 'a -> unit

(** [pop v] removes and returns the last element.
    @raise Invalid_argument on an empty vector. *)
val pop : 'a t -> 'a

(** [last v] returns the last element without removing it. *)
val last : 'a t -> 'a

(** [insert v i x] shifts elements [i..] right by one and writes [x] at [i].
    [i] may equal [length v] (equivalent to [push]). *)
val insert : 'a t -> int -> 'a -> unit

(** [remove v i] removes the element at [i], shifting the tail left. *)
val remove : 'a t -> int -> unit

val clear : 'a t -> unit
val iter : ('a -> unit) -> 'a t -> unit
val iteri : (int -> 'a -> unit) -> 'a t -> unit
val fold : ('acc -> 'a -> 'acc) -> 'acc -> 'a t -> 'acc
val exists : ('a -> bool) -> 'a t -> bool
val for_all : ('a -> bool) -> 'a t -> bool
val to_list : 'a t -> 'a list
val to_array : 'a t -> 'a array
val of_list : 'a list -> 'a t
val of_array : 'a array -> 'a t

(** [sort cmp v] sorts in place. *)
val sort : ('a -> 'a -> int) -> 'a t -> unit

(** [copy v] is an independent copy sharing no mutable state. *)
val copy : 'a t -> 'a t

(** [binary_search v ~compare x] returns the smallest index [i] such that
    [compare (get v i) x >= 0], i.e. the insertion point keeping [v] sorted;
    returns [length v] when every element is smaller. *)
val lower_bound : 'a t -> compare:('a -> 'a -> int) -> 'a -> int
