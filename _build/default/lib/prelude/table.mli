(** Aligned ASCII tables and CSV output for the experiment reports. *)

type t

(** [create ~columns] — column headers fix the column count; subsequent
    rows must have the same arity.
    @raise Invalid_argument on an empty header list. *)
val create : columns:string list -> t

(** @raise Invalid_argument if the row arity differs from the header's. *)
val add_row : t -> string list -> unit

val n_rows : t -> int

(** Render with aligned columns, a header separator, and right-aligned
    numeric-looking cells. *)
val to_string : t -> string

val to_csv : t -> string
val print : t -> unit
