type t = { columns : string list; rows : string list Vec.t }

let create ~columns =
  if columns = [] then invalid_arg "Table.create: no columns";
  { columns; rows = Vec.create () }

let add_row t row =
  if List.length row <> List.length t.columns then
    invalid_arg "Table.add_row: arity mismatch";
  Vec.push t.rows row

let n_rows t = Vec.length t.rows

let looks_numeric s =
  s <> "" && (match float_of_string_opt s with Some _ -> true | None -> false)

let to_string t =
  let all = t.columns :: Vec.to_list t.rows in
  let ncols = List.length t.columns in
  let widths = Array.make ncols 0 in
  List.iter
    (fun row ->
      List.iteri (fun i cell -> widths.(i) <- max widths.(i) (String.length cell)) row)
    all;
  let pad i cell =
    let w = widths.(i) in
    let fill = String.make (w - String.length cell) ' ' in
    if looks_numeric cell then fill ^ cell else cell ^ fill
  in
  let render_row row = String.concat "  " (List.mapi pad row) in
  let sep =
    String.concat "  "
      (Array.to_list (Array.map (fun w -> String.make w '-') widths))
  in
  let body = List.map render_row (Vec.to_list t.rows) in
  String.concat "\n" ((render_row t.columns :: sep :: body) @ [ "" ])

let csv_escape cell =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n') cell then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' cell) ^ "\""
  else cell

let to_csv t =
  let row r = String.concat "," (List.map csv_escape r) in
  String.concat "\n" (row t.columns :: List.map row (Vec.to_list t.rows)) ^ "\n"

let print t = print_string (to_string t)
