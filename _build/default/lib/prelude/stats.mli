(** Small numeric helpers shared by ranking, load balancing and reporting. *)

val mean : float list -> float
val stdev : float list -> float

(** [harmonic_mean xs] — all elements must be positive.
    The paper's rank averaging (§4.1) uses the harmonic mean of cycle-times
    and of link costs. *)
val harmonic_mean : float list -> float

val minimum : float list -> float
val maximum : float list -> float
val sum : float list -> float

(** Greatest common divisor / least common multiple over positive ints;
    [lcm_list] is used for the paper's perfect-balance chunk size
    M = lcm(t_1..t_p) * sum(1/t_i) (§5.3). *)
val gcd : int -> int -> int

val lcm : int -> int -> int
val lcm_list : int list -> int

(** [fequal ?eps a b] — absolute/relative float comparison for tests and
    validation (default [eps = 1e-9]). *)
val fequal : ?eps:float -> float -> float -> bool

(** [percentile p xs] with [p] in [0, 100], linear interpolation. *)
val percentile : float -> float list -> float
