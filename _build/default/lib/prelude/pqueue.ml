type 'a t = { compare : 'a -> 'a -> int; heap : 'a Vec.t }

let create ~compare = { compare; heap = Vec.create () }
let length q = Vec.length q.heap
let is_empty q = Vec.is_empty q.heap

let swap h i j =
  let tmp = Vec.get h i in
  Vec.set h i (Vec.get h j);
  Vec.set h j tmp

let rec sift_up q i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if q.compare (Vec.get q.heap i) (Vec.get q.heap parent) < 0 then begin
      swap q.heap i parent;
      sift_up q parent
    end
  end

let rec sift_down q i =
  let n = Vec.length q.heap in
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < n && q.compare (Vec.get q.heap l) (Vec.get q.heap !smallest) < 0 then
    smallest := l;
  if r < n && q.compare (Vec.get q.heap r) (Vec.get q.heap !smallest) < 0 then
    smallest := r;
  if !smallest <> i then begin
    swap q.heap i !smallest;
    sift_down q !smallest
  end

let add q x =
  Vec.push q.heap x;
  sift_up q (Vec.length q.heap - 1)

let peek q = if is_empty q then None else Some (Vec.get q.heap 0)

let pop_exn q =
  if is_empty q then invalid_arg "Pqueue.pop_exn: empty";
  let top = Vec.get q.heap 0 in
  let tail = Vec.pop q.heap in
  if not (is_empty q) then begin
    Vec.set q.heap 0 tail;
    sift_down q 0
  end;
  top

let pop q = if is_empty q then None else Some (pop_exn q)

let of_list ~compare l =
  let q = create ~compare in
  List.iter (add q) l;
  q

let to_sorted_list q =
  let q' = { compare = q.compare; heap = Vec.copy q.heap } in
  let rec drain acc =
    match pop q' with None -> List.rev acc | Some x -> drain (x :: acc)
  in
  drain []
