type 'a t = { mutable data : 'a array; mutable len : int }

let create ?capacity:_ () = { data = [||]; len = 0 }

let make n x = { data = Array.make (max n 1) x; len = n }
let length v = v.len
let is_empty v = v.len = 0

let check v i =
  if i < 0 || i >= v.len then invalid_arg "Vec: index out of bounds"

let get v i =
  check v i;
  Array.unsafe_get v.data i

let set v i x =
  check v i;
  Array.unsafe_set v.data i x

let grow v x =
  let cap = Array.length v.data in
  if cap = 0 then v.data <- Array.make 8 x
  else begin
    let data = Array.make (2 * cap) x in
    Array.blit v.data 0 data 0 v.len;
    v.data <- data
  end

let push v x =
  if v.len = Array.length v.data then grow v x;
  Array.unsafe_set v.data v.len x;
  v.len <- v.len + 1

let pop v =
  if v.len = 0 then invalid_arg "Vec.pop: empty";
  v.len <- v.len - 1;
  Array.unsafe_get v.data v.len

let last v =
  if v.len = 0 then invalid_arg "Vec.last: empty";
  Array.unsafe_get v.data (v.len - 1)

let insert v i x =
  if i < 0 || i > v.len then invalid_arg "Vec.insert: index out of bounds";
  if v.len = Array.length v.data then grow v x;
  Array.blit v.data i v.data (i + 1) (v.len - i);
  v.data.(i) <- x;
  v.len <- v.len + 1

let remove v i =
  check v i;
  Array.blit v.data (i + 1) v.data i (v.len - i - 1);
  v.len <- v.len - 1

let clear v = v.len <- 0

let iter f v =
  for i = 0 to v.len - 1 do
    f (Array.unsafe_get v.data i)
  done

let iteri f v =
  for i = 0 to v.len - 1 do
    f i (Array.unsafe_get v.data i)
  done

let fold f acc v =
  let acc = ref acc in
  for i = 0 to v.len - 1 do
    acc := f !acc (Array.unsafe_get v.data i)
  done;
  !acc

let exists p v =
  let rec loop i = i < v.len && (p v.data.(i) || loop (i + 1)) in
  loop 0

let for_all p v = not (exists (fun x -> not (p x)) v)

let to_list v =
  let rec loop i acc = if i < 0 then acc else loop (i - 1) (v.data.(i) :: acc) in
  loop (v.len - 1) []

let to_array v = Array.sub v.data 0 v.len
let of_array a = { data = Array.copy a; len = Array.length a }
let of_list l = of_array (Array.of_list l)

let sort cmp v =
  let a = to_array v in
  Array.sort cmp a;
  Array.blit a 0 v.data 0 v.len

let copy v = { data = Array.copy v.data; len = v.len }

let lower_bound v ~compare x =
  (* Smallest index whose element is >= x; standard binary search. *)
  let lo = ref 0 and hi = ref v.len in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if compare (Array.unsafe_get v.data mid) x < 0 then lo := mid + 1
    else hi := mid
  done;
  !lo
