(** Deterministic pseudo-random numbers (splitmix64).

    The experiment harness must be reproducible run to run, so all
    randomness flows through explicitly-seeded generators; [split] derives
    an independent stream, letting parallel experiment legs stay
    deterministic regardless of evaluation order. *)

type t

val create : seed:int -> t

(** [int t bound] is uniform in [[0, bound)].
    @raise Invalid_argument if [bound <= 0]. *)
val int : t -> int -> int

(** [int_in t lo hi] is uniform in [[lo, hi]] (inclusive). *)
val int_in : t -> int -> int -> int

(** [float t bound] is uniform in [[0, bound)]. *)
val float : t -> float -> float

val bool : t -> bool

(** [split t] is a generator statistically independent of [t]'s future
    output; both remain deterministic. *)
val split : t -> t

(** In-place Fisher-Yates shuffle. *)
val shuffle : t -> 'a array -> unit

(** [pick t a]
    @raise Invalid_argument on an empty array. *)
val pick : t -> 'a array -> 'a
