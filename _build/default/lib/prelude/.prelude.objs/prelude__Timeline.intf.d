lib/prelude/timeline.mli:
