lib/prelude/pqueue.mli:
