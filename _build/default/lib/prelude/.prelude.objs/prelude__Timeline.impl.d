lib/prelude/timeline.ml: Array List
