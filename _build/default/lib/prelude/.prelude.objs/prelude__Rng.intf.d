lib/prelude/rng.mli:
