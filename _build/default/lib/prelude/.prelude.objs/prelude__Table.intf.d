lib/prelude/table.mli:
