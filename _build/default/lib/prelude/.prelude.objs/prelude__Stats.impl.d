lib/prelude/stats.ml: Array List
