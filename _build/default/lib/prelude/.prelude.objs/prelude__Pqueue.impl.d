lib/prelude/pqueue.ml: List Vec
