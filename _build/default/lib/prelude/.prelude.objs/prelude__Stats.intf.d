lib/prelude/stats.mli:
