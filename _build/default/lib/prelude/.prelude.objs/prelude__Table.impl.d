lib/prelude/table.ml: Array List String Vec
