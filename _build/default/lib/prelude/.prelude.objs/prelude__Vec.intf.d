lib/prelude/vec.mli:
