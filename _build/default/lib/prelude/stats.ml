let sum = List.fold_left ( +. ) 0.

let mean = function
  | [] -> invalid_arg "Stats.mean: empty"
  | xs -> sum xs /. float_of_int (List.length xs)

let stdev = function
  | [] | [ _ ] -> 0.
  | xs ->
      let m = mean xs in
      let var =
        sum (List.map (fun x -> (x -. m) ** 2.) xs)
        /. float_of_int (List.length xs - 1)
      in
      sqrt var

let harmonic_mean = function
  | [] -> invalid_arg "Stats.harmonic_mean: empty"
  | xs ->
      if List.exists (fun x -> x <= 0.) xs then
        invalid_arg "Stats.harmonic_mean: non-positive element";
      float_of_int (List.length xs) /. sum (List.map (fun x -> 1. /. x) xs)

let minimum = function
  | [] -> invalid_arg "Stats.minimum: empty"
  | x :: xs -> List.fold_left min x xs

let maximum = function
  | [] -> invalid_arg "Stats.maximum: empty"
  | x :: xs -> List.fold_left max x xs

let rec gcd a b = if b = 0 then abs a else gcd b (a mod b)

let lcm a b =
  if a = 0 || b = 0 then 0 else abs (a / gcd a b * b)

let lcm_list = function
  | [] -> invalid_arg "Stats.lcm_list: empty"
  | x :: xs -> List.fold_left lcm x xs

let fequal ?(eps = 1e-9) a b =
  let scale = max 1. (max (abs_float a) (abs_float b)) in
  abs_float (a -. b) <= eps *. scale

let percentile p = function
  | [] -> invalid_arg "Stats.percentile: empty"
  | xs ->
      if p < 0. || p > 100. then invalid_arg "Stats.percentile: p out of range";
      let a = Array.of_list xs in
      Array.sort compare a;
      let n = Array.length a in
      let rank = p /. 100. *. float_of_int (n - 1) in
      let lo = int_of_float (floor rank) and hi = int_of_float (ceil rank) in
      let frac = rank -. floor rank in
      ((1. -. frac) *. a.(lo)) +. (frac *. a.(hi))
