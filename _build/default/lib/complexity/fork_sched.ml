module Schedule = Sched.Schedule
module Fork = Testbeds.Fork
module Fork_exact = Heuristics.Fork_exact

type t = {
  instance : Two_partition.t;
  graph : Taskgraph.Graph.t;
  time_bound : float;
}

(* Child weights of the constructed fork: w_i = 10 (M + a_i + 1) for the
   original items, then three closing children of weight 10 (M + m) + 1. *)
let child_weights instance =
  let items = Two_partition.items instance in
  let m_max = Array.fold_left max items.(0) items in
  let m_min = Array.fold_left min items.(0) items in
  let wmin = float_of_int ((10 * (m_max + m_min)) + 1) in
  let originals =
    Array.map (fun a -> float_of_int (10 * (m_max + a + 1))) items
  in
  Array.append originals [| wmin; wmin; wmin |]

let reduce instance =
  let weights = child_weights instance in
  let n = Two_partition.n instance in
  let wmin = weights.(n) in
  let half_original =
    Array.fold_left ( +. ) 0. (Array.sub weights 0 n) /. 2.
  in
  let time_bound = half_original +. (2. *. wmin) in
  let graph =
    Fork.of_weights ~parent_weight:0. ~child_weights:weights
      ~child_data:(Array.copy weights)
  in
  { instance; graph; time_bound }

let shifted_instance t =
  let items = Two_partition.items t.instance in
  let m_max = Array.fold_left max items.(0) items in
  Two_partition.create (Array.map (fun a -> m_max + a + 1) items)

let platform t =
  Platform.homogeneous ~p:(Taskgraph.Graph.n_tasks t.graph) ~link_cost:1.

(* The proof's forward construction.  Children are 1-based tasks in the
   fork graph; [a1] holds 0-based item indices (the proof's A_1). *)
let schedule_of_partition t ~a1 =
  let g = t.graph in
  let plat = platform t in
  let n = Two_partition.n t.instance in
  let n_children = n + 3 in
  let sched =
    Schedule.create ~graph:g ~platform:plat ~model:Commmodel.Comm_model.one_port ()
  in
  (* P0: parent (weight 0) at time 0, then the A1 children and the first
     two closing children, back to back. *)
  Schedule.place_task sched ~task:0 ~proc:0 ~start:0.;
  let on_p0 =
    List.sort compare (List.map (fun i -> i + 1) a1) @ [ n + 1; n + 2 ]
  in
  let clock = ref 0. in
  List.iter
    (fun child ->
      Schedule.place_task sched ~task:child ~proc:0 ~start:!clock;
      clock := Schedule.finish_of_exn sched child)
    on_p0;
  (* Remote children: everyone else, one processor each; messages leave P0
     back to back by increasing index, child n+3 last. *)
  let remote =
    List.filter
      (fun c -> not (List.mem c on_p0))
      (List.init n_children (fun i -> i + 1))
  in
  let remote = List.sort compare remote in
  let remote =
    (* make sure the last closing child is sent last, as in the proof *)
    List.filter (fun c -> c <> n + 3) remote @ [ n + 3 ]
  in
  let send_clock = ref 0. in
  List.iteri
    (fun k child ->
      let proc = k + 1 in
      let edge =
        match Taskgraph.Graph.find_edge g ~src:0 ~dst:child with
        | Some e -> e.Taskgraph.Graph.id
        | None -> assert false
      in
      let arrival =
        Schedule.add_comm sched ~edge ~src_proc:0 ~dst_proc:proc ~start:!send_clock
      in
      send_clock := arrival;
      Schedule.place_task sched ~task:child ~proc ~start:arrival)
    remote;
  sched

let decide t =
  match Fork_exact.of_graph t.graph with
  | None -> assert false
  | Some inst ->
      Fork_exact.optimal_makespan inst <= t.time_bound +. 1e-6
