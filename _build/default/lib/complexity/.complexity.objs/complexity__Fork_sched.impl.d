lib/complexity/fork_sched.ml: Array Commmodel Heuristics List Platform Sched Taskgraph Testbeds Two_partition
