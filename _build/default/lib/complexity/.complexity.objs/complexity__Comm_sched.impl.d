lib/complexity/comm_sched.ml: Array Commmodel Fun List Platform Sched Taskgraph Two_partition
