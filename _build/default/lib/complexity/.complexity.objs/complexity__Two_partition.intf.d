lib/complexity/two_partition.mli: Prelude
