lib/complexity/comm_sched.mli: Platform Sched Taskgraph Two_partition
