lib/complexity/fork_sched.mli: Platform Sched Taskgraph Two_partition
