lib/complexity/two_partition.ml: Array List Prelude
