type t = { items : int array }

let create items =
  if Array.length items = 0 then invalid_arg "Two_partition.create: empty";
  Array.iter
    (fun a -> if a <= 0 then invalid_arg "Two_partition.create: non-positive item")
    items;
  { items = Array.copy items }

let n t = Array.length t.items
let total t = Array.fold_left ( + ) 0 t.items
let items t = Array.copy t.items

(* Subset-sum DP over reachable sums; [from.(s)] records the item that
   first reached sum [s] so a witness can be rebuilt. *)
let solve t =
  let total = total t in
  if total mod 2 <> 0 then None
  else begin
    let half = total / 2 in
    let from = Array.make (half + 1) (-2) in
    from.(0) <- -1;
    Array.iteri
      (fun i a ->
        for s = half downto a do
          if from.(s) = -2 && from.(s - a) <> -2 && from.(s - a) <> i then
            from.(s) <- i
        done)
      t.items;
    if from.(half) = -2 then None
    else begin
      (* Walk back through the DP.  Because an item can only extend sums
         recorded before it was processed, following [from] never reuses an
         item. *)
      let rec walk s acc =
        if s = 0 then acc else walk (s - t.items.(from.(s))) (from.(s) :: acc)
      in
      Some (walk half [])
    end
  end

let is_solvable t = solve t <> None

let solve_balanced t =
  let total = total t in
  let size = n t in
  if total mod 2 <> 0 || size mod 2 <> 0 then None
  else begin
    let half = total / 2 and k = size / 2 in
    (* reach.(c).(s): item index that reached (count c, sum s), or -2. *)
    let reach = Array.make_matrix (k + 1) (half + 1) (-2) in
    reach.(0).(0) <- -1;
    Array.iteri
      (fun i a ->
        for c = min k (i + 1) downto 1 do
          for s = half downto a do
            if reach.(c).(s) = -2 && reach.(c - 1).(s - a) <> -2 then begin
              (* Only extend states built from earlier items. *)
              let prev = reach.(c - 1).(s - a) in
              if prev < i then reach.(c).(s) <- i
            end
          done
        done)
      t.items;
    if reach.(k).(half) = -2 then None
    else begin
      let rec walk c s acc =
        if c = 0 then acc
        else begin
          let i = reach.(c).(s) in
          walk (c - 1) (s - t.items.(i)) (i :: acc)
        end
      in
      Some (walk k half [])
    end
  end

let is_balanced_solvable t = solve_balanced t <> None

let verify t indices =
  let total = total t in
  total mod 2 = 0
  && List.sort_uniq compare indices = List.sort compare indices
  && List.for_all (fun i -> i >= 0 && i < n t) indices
  && 2 * List.fold_left (fun acc i -> acc + t.items.(i)) 0 indices = total

let random rng ~n ~max_item =
  create (Array.init n (fun _ -> Prelude.Rng.int_in rng 1 max_item))
