(** The Theorem 2 reduction: 2-PARTITION → COMM-SCHED (Appendix).

    COMM-SCHED fixes the allocation and asks only for a feasible ordering
    of communications — the problem ILHA's third-step variant faces after
    its two scans.  The construction: a fork [v_0 → v_1..v_n] (volumes
    [a_i]) with [v_0] on [P_0] and [v_i] on [P_i], plus [n] separate pairs
    [v_{2n+i} → v_{n+i}] of volume [S] with [v_{2n+i}] on [P_{n+i}] and
    [v_{n+i}] on [P_i]; all execution times are zero.

    Feasibility within the bound forces every [a_i]-message through
    [P_0]'s send port with no idle and every [S]-message to fit entirely
    before or after [P_i]'s [a_i]-message — i.e. the [a_i] split into two
    halves of sum [S]: exactly 2-PARTITION.

    {b Reproduction note.}  The paper prints the bound as [T = S], but its
    own forward construction keeps [P_0] sending during [[0, 2S]]; the
    consistent bound is [T = 2S], which we use (with all zero execution
    times the makespan equals the last arrival). *)

type t = {
  instance : Two_partition.t;
  graph : Taskgraph.Graph.t;
  alloc : int array;  (** fixed processor of every task *)
  time_bound : float;  (** 2S *)
}

val reduce : Two_partition.t -> t

(** [2n + 1] same-speed processors, unit links. *)
val platform : t -> Platform.t

(** The proof's forward construction from a solution [a1] (0-based item
    indices): [P_0] sends the [A_1] messages back to back in [[0, S]] and
    the [A_2] messages in [[S, 2S]]; the [S]-messages of [A_1]-processors
    occupy [[S, 2S]] and those of [A_2]-processors [[0, S]].  Returns a
    complete one-port schedule honouring [alloc]. *)
val schedule_of_partition : t -> a1:int list -> Sched.Schedule.t

(** [decide t] — exhaustive over back-to-back send orders of [P_0]
    (feasibility within [2S] forbids idling, so this is exact).  Small [n]
    only ([n <= 8]). *)
val decide : t -> bool
