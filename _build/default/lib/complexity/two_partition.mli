(** 2-PARTITION instances and pseudo-polynomial solvers.

    The source problem of both reductions (§3 and the Appendix): given
    positive integers [a_1..a_n], split the index set into two halves of
    equal sum.  The {e balanced} variant additionally demands the halves
    have equal cardinality; it is also NP-complete, and it is the variant
    the Theorem 1 construction actually encodes (see {!Fork_sched}). *)

type t = { items : int array }

(** @raise Invalid_argument on non-positive items or an empty array. *)
val create : int array -> t

val n : t -> int
val total : t -> int

(** A copy of the instance's items. *)
val items : t -> int array

(** [solve t] — indices of one half summing to [total/2], if any (dynamic
    programming over sums, with parent tracking; [O(n * total)]). *)
val solve : t -> int list option

val is_solvable : t -> bool

(** [solve_balanced t] — a half of cardinality [n/2] summing to [total/2],
    if any ([O(n^2 * total)] DP); [None] whenever [n] is odd. *)
val solve_balanced : t -> int list option

val is_balanced_solvable : t -> bool

(** [verify t indices] — do these indices sum to exactly half? *)
val verify : t -> int list -> bool

(** Random instance with items in [[1, max_item]]. *)
val random : Prelude.Rng.t -> n:int -> max_item:int -> t
