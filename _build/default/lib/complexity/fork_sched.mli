(** The Theorem 1 reduction: 2-PARTITION → FORK-SCHED (§3).

    From integers [a_1..a_n] build a fork graph of [N = n + 3] children on
    unlimited same-speed processors with a fully homogeneous network:

    - parent weight [w_0 = 0];
    - [w_i = 10 (M + a_i + 1)] for the first [n] children
      ([M = max a_i]);
    - three closing children of weight [w_min = 10 (M + m) + 1]
      ([m = min a_i]);
    - message volumes [d_i = w_i];
    - time bound [T = (1/2) sum w_i + 2 w_min] (sum over the first [n]).

    {b Reproduction note.}  Taken literally, the construction encodes
    2-PARTITION of the {e shifted} items [M + a_i + 1], not of the
    originals: a schedule meeting [T] forces [P_0]'s load to be exactly
    [T] with exactly two closing children (the proof's mod-10 argument),
    i.e. [sum over A_1 of (M + a_i + 1) = (1/2) sum (M + a_i + 1)] — but
    because each [w_i] carries the [10 (M + 1)] offset, that equation can
    hold with [sum over A_1 of a_i <> S] when [|A_1| <> n/2] (e.g. items
    [8 5 9 1 1]: shifted halves [18+19 = 15+11+11] yet no 2-partition).
    A {e balanced} solution of the original instance always induces one of
    the shifted instance, so NP-hardness survives via the balanced
    variant.  The property tests pin the exact equivalence
    (decide ⟺ shifted 2-PARTITION, checked with an exact fork solver) and
    the implication (balanced original ⟹ constructive schedule in bound);
    EXPERIMENTS.md records the finding. *)

type t = {
  instance : Two_partition.t;
  graph : Taskgraph.Graph.t;
  time_bound : float;
}

val reduce : Two_partition.t -> t

(** The 2-PARTITION instance the construction literally encodes: items
    [M + a_i + 1] (see the reproduction note above).  [decide] is
    equivalent to this instance's solvability. *)
val shifted_instance : t -> Two_partition.t

(** The platform of the reduction: one same-speed processor per task, unit
    links (that is enough — more processors never help a fork). *)
val platform : t -> Platform.t

(** [schedule_of_partition t ~a1] — the constructive schedule of the
    proof's forward direction (valid and within the bound when [a1] is a
    balanced solution): [P_0] runs the parent, the [a1] children and two
    closing children; every other child gets its own processor; messages
    leave [P_0] back to back, the third closing child last.  The result is
    a real {!Sched.Schedule.t} under the one-port model — callers can
    revalidate it with {!Sched.Validate}. *)
val schedule_of_partition : t -> a1:int list -> Sched.Schedule.t

(** [decide t] — is there a one-port schedule meeting the bound?  Exact
    enumeration via {!Heuristics.Fork_exact}; use only for small [n].
    @raise Invalid_argument beyond 8 children (i.e. [n > 5]). *)
val decide : t -> bool
