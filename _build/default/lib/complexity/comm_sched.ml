module Graph = Taskgraph.Graph
module Schedule = Sched.Schedule

type t = {
  instance : Two_partition.t;
  graph : Taskgraph.Graph.t;
  alloc : int array;
  time_bound : float;
}

(* Task ids: v0 = 0; fork children v_i = i (1..n); receivers v_{n+i};
   senders v_{2n+i}.  Processors: P_0..P_n host v_0, the fork children and
   the receivers; P_{n+i} hosts sender v_{2n+i}. *)
let reduce instance =
  let n = Two_partition.n instance in
  let items = Two_partition.items instance in
  let s = Two_partition.total instance / 2 in
  let weights = Array.make ((3 * n) + 1) 0. in
  let fork_edges =
    List.init n (fun i -> (0, i + 1, float_of_int items.(i)))
  in
  let pair_edges =
    List.init n (fun i -> ((2 * n) + 1 + i, n + 1 + i, float_of_int s))
  in
  let graph =
    Graph.create ~name:"comm-sched" ~weights ~edges:(fork_edges @ pair_edges) ()
  in
  let alloc =
    Array.init ((3 * n) + 1) (fun v ->
        if v = 0 then 0
        else if v <= n then v (* v_i on P_i *)
        else if v <= 2 * n then v - n (* v_{n+i} on P_i *)
        else v - n (* v_{2n+i} on P_{n+i} *))
  in
  { instance; graph; alloc; time_bound = float_of_int (2 * s) }

let platform t =
  Platform.homogeneous ~p:((2 * Two_partition.n t.instance) + 1) ~link_cost:1.

let schedule_of_partition t ~a1 =
  let n = Two_partition.n t.instance in
  let s = float_of_int (Two_partition.total t.instance / 2) in
  let plat = platform t in
  let sched =
    Schedule.create ~graph:t.graph ~platform:plat
      ~model:Commmodel.Comm_model.one_port ()
  in
  let in_a1 = Array.make n false in
  List.iter (fun i -> in_a1.(i) <- true) a1;
  Schedule.place_task sched ~task:0 ~proc:0 ~start:0.;
  (* P0's a_i-messages: A1 back to back from 0, A2 back to back from S. *)
  let clock_first = ref 0. and clock_second = ref s in
  let edge_of ~src ~dst =
    match Graph.find_edge t.graph ~src ~dst with
    | Some e -> e.Graph.id
    | None -> assert false
  in
  for i = 0 to n - 1 do
    let child = i + 1 in
    let clock = if in_a1.(i) then clock_first else clock_second in
    let arrival =
      Schedule.add_comm sched
        ~edge:(edge_of ~src:0 ~dst:child)
        ~src_proc:0 ~dst_proc:t.alloc.(child) ~start:!clock
    in
    clock := arrival;
    Schedule.place_task sched ~task:child ~proc:t.alloc.(child) ~start:arrival;
    (* The S-message to the same processor occupies the other half. *)
    let sender = (2 * n) + 1 + i and receiver = n + 1 + i in
    let s_start = if in_a1.(i) then s else 0. in
    Schedule.place_task sched ~task:sender ~proc:t.alloc.(sender) ~start:0.;
    let s_arrival =
      Schedule.add_comm sched
        ~edge:(edge_of ~src:sender ~dst:receiver)
        ~src_proc:t.alloc.(sender) ~dst_proc:t.alloc.(receiver) ~start:s_start
    in
    Schedule.place_task sched ~task:receiver ~proc:t.alloc.(receiver)
      ~start:s_arrival
  done;
  sched

(* Feasibility given the fixed allocation: choose a back-to-back order of
   P0's sends; processor P_i then needs room for its S-message entirely
   before or after its a_i-message within [0, 2S]. *)
let decide t =
  let n = Two_partition.n t.instance in
  if n > 8 then invalid_arg "Comm_sched.decide: n > 8";
  let items = Two_partition.items t.instance in
  let total = Two_partition.total t.instance in
  if total mod 2 <> 0 then false
  else begin
    let s = float_of_int (total / 2) in
    let rec feasible order_pool prefix =
      if order_pool = [] then true
      else
        List.exists
          (fun i ->
            let start = prefix in
            let finish = prefix +. float_of_int items.(i) in
            (* each message must sit entirely in one half of [0, 2S] *)
            let in_first_half = finish <= s in
            let in_second_half = start >= s && finish <= 2. *. s in
            (in_first_half || in_second_half)
            && feasible (List.filter (( <> ) i) order_pool) finish)
          order_pool
    in
    feasible (List.init n Fun.id) 0.
  end
