type port_discipline =
  | Unlimited
  | One_port_bidirectional
  | One_port_unidirectional

type t = { ports : port_discipline; overlap : bool; link_contention : bool }

let macro_dataflow = { ports = Unlimited; overlap = true; link_contention = false }
let one_port = { macro_dataflow with ports = One_port_bidirectional }
let one_port_unidirectional = { macro_dataflow with ports = One_port_unidirectional }
let link_contention = { macro_dataflow with link_contention = true }
let no_overlap m = { m with overlap = false }
let with_link_contention m = { m with link_contention = true }
let restricts_ports m = m.ports <> Unlimited

let name m =
  let base =
    match m.ports with
    | Unlimited -> "macro-dataflow"
    | One_port_bidirectional -> "one-port"
    | One_port_unidirectional -> "one-port-unidir"
  in
  let base = if m.link_contention then
      (match m.ports with Unlimited -> "link-contention" | _ -> base ^ "+links")
    else base
  in
  if m.overlap then base else base ^ "-no-overlap"

let pp fmt m = Format.pp_print_string fmt (name m)
let equal a b = a = b

let all =
  [
    macro_dataflow;
    one_port;
    one_port_unidirectional;
    link_contention;
    with_link_contention one_port;
    no_overlap one_port;
    no_overlap one_port_unidirectional;
  ]

let of_name s =
  match List.find_opt (fun m -> name m = s) all with
  | Some m -> m
  | None -> invalid_arg (Printf.sprintf "Comm_model.of_name: unknown model %S" s)
