lib/commmodel/comm_model.ml: Format List Printf
