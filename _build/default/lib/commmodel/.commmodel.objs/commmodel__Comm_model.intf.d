lib/commmodel/comm_model.mli: Format
