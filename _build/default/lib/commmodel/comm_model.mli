(** Communication-resource models.

    The paper contrasts the classical {e macro-dataflow} model — where a
    processor may exchange any number of messages simultaneously — with the
    {e bi-directional one-port} model (§2.3): at any time-step a processor
    sends to at most one processor and receives from at most one, with
    sending and receiving independent of each other and overlappable with
    computation.  §2.3 also names the variants we expose: uni-directional
    ports (send and receive share the single port) and the removal of
    communication/computation overlap. *)

type port_discipline =
  | Unlimited  (** macro-dataflow: no port resource is ever busy *)
  | One_port_bidirectional
      (** one send port and one independent receive port per processor *)
  | One_port_unidirectional
      (** a single port serving both directions: a processor either sends
          or receives at any time-step *)

type t = {
  ports : port_discipline;
  overlap : bool;
      (** [true]: communication overlaps computation (the paper's default);
          [false]: a communication also occupies the processor's compute
          resource on both ends. *)
  link_contention : bool;
      (** [true]: each {e direct link} carries at most one message at a
          time (half-duplex), the §2.2 Sinnen–Sousa restriction; matters
          on sparse routed topologies where several routes share a link.
          Orthogonal to the port discipline. *)
}

(** The standard macro-dataflow model (§2.1). *)
val macro_dataflow : t

(** The paper's model: bi-directional one-port with overlap (§2.3). *)
val one_port : t

(** Uni-directional one-port with overlap (the Hollermann/Hsu-style variant
    discussed in §2.2). *)
val one_port_unidirectional : t

(** The §2.2 contention model of Sinnen & Sousa: unrestricted ports but
    one message per link at a time over a statically-routed network. *)
val link_contention : t

(** [no_overlap m] switches off communication/computation overlap. *)
val no_overlap : t -> t

(** [with_link_contention m] adds the per-link restriction to any model. *)
val with_link_contention : t -> t

(** [restricts_ports m] is [false] exactly for {!Unlimited} disciplines. *)
val restricts_ports : t -> bool

val name : t -> string
val pp : Format.formatter -> t -> unit
val equal : t -> t -> bool

(** All models, for registries and sweeps. *)
val all : t list

(** [of_name s] inverts {!name}.
    @raise Invalid_argument on an unknown name. *)
val of_name : string -> t
