(** Resource-utilisation profiles of a schedule.

    The §5 discussion reasons about why speedups saturate ("communications
    become the bottleneck", "one processor is left useless"); these
    profiles make those claims measurable: per-processor busy fractions
    over the whole run, time-bucketed occupancy for compute and ports, and
    an ASCII rendering with one sparkline per resource. *)

type profile = {
  makespan : float;
  buckets : int;
  (* each array is [p][buckets] with values in [0, 1] *)
  compute : float array array;
  send : float array array;
  recv : float array array;
}

(** [profile ?buckets s] (default 40 buckets). *)
val profile : ?buckets:int -> Sched.Schedule.t -> profile

(** Overall busy fraction of each processor's compute resource. *)
val compute_fractions : Sched.Schedule.t -> float array

(** Fraction of the makespan during which {e at least one} port of each
    processor is busy — the communication pressure the one-port model
    meters. *)
val port_fractions : Sched.Schedule.t -> float array

(** ASCII rendering: one line per processor and resource, using
    ' .:-=+*#%@' as a ten-level density scale. *)
val render : profile -> string
