lib/simkit/executor.mli: Sched
