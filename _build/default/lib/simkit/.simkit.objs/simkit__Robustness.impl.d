lib/simkit/robustness.ml: Format List Pert Prelude Rng Stats
