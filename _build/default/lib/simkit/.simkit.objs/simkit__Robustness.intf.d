lib/simkit/robustness.mli: Format Pert Prelude Sched
