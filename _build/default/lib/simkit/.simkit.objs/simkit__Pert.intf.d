lib/simkit/pert.mli: Sched
