lib/simkit/utilization.ml: Array Buffer List Platform Printf Sched String Taskgraph
