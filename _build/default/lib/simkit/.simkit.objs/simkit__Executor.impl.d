lib/simkit/executor.ml: Array Commmodel Hashtbl List Prelude Printf Sched Taskgraph
