lib/simkit/utilization.mli: Sched
