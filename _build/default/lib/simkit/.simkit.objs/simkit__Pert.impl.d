lib/simkit/pert.ml: Array Commmodel Hashtbl List Queue Sched Taskgraph
