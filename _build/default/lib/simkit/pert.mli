(** Dependency (PERT) view of a finished schedule.

    A schedule fixes three kinds of decisions: where tasks run, in which
    order each processor executes its tasks, and in which order each port
    carries its messages.  This module extracts exactly those decisions as
    a DAG over events (task executions and communication hops) whose edges
    are:

    - data dependencies (source finish → first hop → … → last hop →
      destination start, or source → destination for local edges);
    - processor order (consecutive tasks on one compute resource);
    - port order (consecutive hops through one send/receive port, honouring
      the model's port discipline — including comm↔task edges under
      no-overlap models).

    Re-timing the DAG with new durations answers two questions the library
    needs: the {e compacted} makespan (same decisions, all idle squeezed
    out — never worse than the original), and the {e degraded} makespan
    under execution-time jitter (robustness / failure injection), both
    without re-running any heuristic. *)

type t

(** An event is a task execution or one communication hop. *)
type event = Task of int | Hop of Sched.Schedule.comm

val build : Sched.Schedule.t -> t

val n_events : t -> int

(** [retime t ~task_duration ~hop_duration] — earliest-start times under
    the recorded decision orders with rescaled durations; each callback
    receives the event's {e original} duration and returns the new one.
    Returns the resulting makespan (maximum task finish). *)
val retime :
  t ->
  task_duration:(int -> float -> float) ->
  hop_duration:(Sched.Schedule.comm -> float -> float) ->
  float

(** [compacted_makespan t] — {!retime} with the original durations; always
    [<=] the original makespan (property-tested). *)
val compacted_makespan : t -> float
