open Prelude

type stats = {
  nominal : float;
  mean : float;
  worst : float;
  p95 : float;
  trials : int;
  jitter : float;
}

let degraded_makespan pert rng ~task_jitter ~comm_jitter =
  Pert.retime pert
    ~task_duration:(fun _ d -> d *. (1. +. Rng.float rng task_jitter))
    ~hop_duration:(fun _ d -> d *. (1. +. Rng.float rng comm_jitter))

let monte_carlo sched rng ~jitter ~trials =
  if trials < 1 then invalid_arg "Robustness.monte_carlo: trials < 1";
  let pert = Pert.build sched in
  let draws =
    List.init trials (fun _ ->
        degraded_makespan pert rng ~task_jitter:jitter ~comm_jitter:jitter)
  in
  {
    nominal = Pert.compacted_makespan pert;
    mean = Stats.mean draws;
    worst = Stats.maximum draws;
    p95 = Stats.percentile 95. draws;
    trials;
    jitter;
  }

let pp_stats fmt s =
  Format.fprintf fmt
    "@[<v>nominal: %g@ mean: %g@ p95: %g@ worst: %g@ (%d trials, jitter %.0f%%)@]"
    s.nominal s.mean s.p95 s.worst s.trials (100. *. s.jitter)
