module Graph = Taskgraph.Graph
module Schedule = Sched.Schedule

type profile = {
  makespan : float;
  buckets : int;
  compute : float array array;
  send : float array array;
  recv : float array array;
}

(* Spread the interval [start, finish) over the bucket grid, adding the
   covered fraction of each bucket. *)
let deposit row ~buckets ~makespan ~start ~finish =
  if makespan > 0. && finish > start then begin
    let width = makespan /. float_of_int buckets in
    let first = int_of_float (start /. width) in
    let last = min (buckets - 1) (int_of_float ((finish -. 1e-12) /. width)) in
    for b = max 0 first to last do
      let b0 = float_of_int b *. width and b1 = float_of_int (b + 1) *. width in
      let overlap = min finish b1 -. max start b0 in
      if overlap > 0. then row.(b) <- min 1. (row.(b) +. (overlap /. width))
    done
  end

let profile ?(buckets = 40) s =
  if buckets < 1 then invalid_arg "Utilization.profile: buckets < 1";
  let g = Schedule.graph s in
  let p = Platform.p (Schedule.platform s) in
  let makespan = Schedule.makespan s in
  let make () = Array.init p (fun _ -> Array.make buckets 0.) in
  let compute = make () and send = make () and recv = make () in
  for v = 0 to Graph.n_tasks g - 1 do
    let pl = Schedule.placement_exn s v in
    deposit compute.(pl.Schedule.proc) ~buckets ~makespan ~start:pl.Schedule.start
      ~finish:pl.Schedule.finish
  done;
  List.iter
    (fun (c : Schedule.comm) ->
      deposit send.(c.src_proc) ~buckets ~makespan ~start:c.start ~finish:c.finish;
      deposit recv.(c.dst_proc) ~buckets ~makespan ~start:c.start ~finish:c.finish)
    (Schedule.comms s);
  { makespan; buckets; compute; send; recv }

let compute_fractions s =
  let g = Schedule.graph s in
  let p = Platform.p (Schedule.platform s) in
  let makespan = Schedule.makespan s in
  let busy = Array.make p 0. in
  for v = 0 to Graph.n_tasks g - 1 do
    let pl = Schedule.placement_exn s v in
    busy.(pl.Schedule.proc) <-
      busy.(pl.Schedule.proc) +. (pl.Schedule.finish -. pl.Schedule.start)
  done;
  if makespan > 0. then Array.map (fun b -> b /. makespan) busy else busy

let port_fractions s =
  let p = Platform.p (Schedule.platform s) in
  let makespan = Schedule.makespan s in
  (* merge each processor's port intervals and measure the union *)
  let intervals = Array.make p [] in
  List.iter
    (fun (c : Schedule.comm) ->
      if c.finish > c.start then begin
        intervals.(c.src_proc) <- (c.start, c.finish) :: intervals.(c.src_proc);
        intervals.(c.dst_proc) <- (c.start, c.finish) :: intervals.(c.dst_proc)
      end)
    (Schedule.comms s);
  Array.map
    (fun ivs ->
      let sorted = List.sort compare ivs in
      let rec merge acc = function
        | [] -> acc
        | (s0, f0) :: rest -> (
            match acc with
            | (s1, f1) :: acc' when s0 <= f1 -> merge ((s1, max f0 f1) :: acc') rest
            | acc -> merge ((s0, f0) :: acc) rest)
      in
      let total =
        List.fold_left (fun t (s0, f0) -> t +. (f0 -. s0)) 0. (merge [] sorted)
      in
      if makespan > 0. then total /. makespan else 0.)
    intervals

let density_chars = " .:-=+*#%@"

let sparkline row =
  String.concat ""
    (Array.to_list
       (Array.map
          (fun v ->
            let level =
              min 9 (max 0 (int_of_float (v *. 9.999)))
            in
            String.make 1 density_chars.[level])
          row))

let render p =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "utilization over [0, %g), %d buckets (' '=idle, '@'=full)\n"
       p.makespan p.buckets);
  Array.iteri
    (fun q _ ->
      Buffer.add_string buf
        (Printf.sprintf "P%-2d cpu  |%s|\n" q (sparkline p.compute.(q)));
      Buffer.add_string buf
        (Printf.sprintf "    send |%s|\n" (sparkline p.send.(q)));
      Buffer.add_string buf
        (Printf.sprintf "    recv |%s|\n" (sparkline p.recv.(q))))
    p.compute;
  Buffer.contents buf
