(** Discrete-event execution of a schedule's decisions.

    A third, independent implementation of the one-port semantics (after
    the builder's timelines and {!Pert}'s longest-path re-timing): keep
    only the schedule's {e decisions} — the allocation, each processor's
    task order, each port's/link's message order — and execute them with
    an event queue.  An event (task execution or communication hop) fires
    as soon as

    - all its data dependencies have completed, and
    - it is at the head of the FIFO of {e every} resource it occupies
      (compute unit, send port, receive port, shared link — per the
      model), and each of those resources is free.

    The executor processes completions in chronological order, exactly as
    a simulator stepping through time.  Because the decision orders come
    from a valid schedule, execution always completes, and the resulting
    makespan must equal {!Pert.compacted_makespan} — the property tests
    pin the two implementations against each other. *)

type trace = {
  makespan : float;
  task_starts : float array;
  events_fired : int;
      (** total events processed (tasks + communication hops) *)
}

(** [run s] — execute the schedule's decisions as-soon-as-possible.
    @raise Failure if execution deadlocks, which would mean the recorded
    orders are inconsistent (a corrupt schedule). *)
val run : Sched.Schedule.t -> trace
