let task_names = [| "a0"; "b0"; "a1"; "a2"; "a3"; "ab1"; "ab2"; "b3"; "b2"; "b1" |]

let graph () =
  let a0 = 0 and b0 = 1 in
  let a_children = [ 2; 3; 4; 5; 6 ] (* a1 a2 a3 ab1 ab2 *) in
  let b_children = [ 5; 6; 7; 8; 9 ] (* ab1 ab2 b3 b2 b1 *) in
  let edges =
    List.map (fun c -> (a0, c, 1.)) a_children
    @ List.map (fun c -> (b0, c, 1.)) b_children
  in
  Taskgraph.Graph.create ~name:"toy-fig3" ~weights:(Array.make 10 1.) ~edges ()
