module Graph = Taskgraph.Graph

let of_weights ~parent_weight ~child_weights ~child_data =
  let n = Array.length child_weights in
  if Array.length child_data <> n then
    invalid_arg "Fork.of_weights: child arrays differ in length";
  let weights = Array.append [| parent_weight |] child_weights in
  let edges = List.init n (fun i -> (0, i + 1, child_data.(i))) in
  Graph.create ~name:"fork" ~weights ~edges ()

let uniform ~children ~weight ~data =
  if children < 0 then invalid_arg "Fork.uniform: negative children";
  of_weights ~parent_weight:weight
    ~child_weights:(Array.make children weight)
    ~child_data:(Array.make children data)

let example_fig1 () = uniform ~children:6 ~weight:1. ~data:1.
