lib/testbeds/fork.mli: Taskgraph
