lib/testbeds/kernels.mli: Taskgraph
