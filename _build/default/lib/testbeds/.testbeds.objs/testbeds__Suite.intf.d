lib/testbeds/suite.mli: Taskgraph
