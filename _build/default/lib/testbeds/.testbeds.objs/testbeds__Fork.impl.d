lib/testbeds/fork.ml: Array List Taskgraph
