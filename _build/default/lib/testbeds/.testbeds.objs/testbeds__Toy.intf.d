lib/testbeds/toy.mli: Taskgraph
