lib/testbeds/suite.ml: Kernels List Printf String Taskgraph
