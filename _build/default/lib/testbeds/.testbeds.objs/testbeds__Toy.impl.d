lib/testbeds/toy.ml: Array List Taskgraph
