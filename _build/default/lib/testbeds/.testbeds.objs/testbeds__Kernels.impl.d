lib/testbeds/kernels.ml: Array List Printf Taskgraph
