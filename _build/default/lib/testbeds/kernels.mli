(** The six simulation testbeds of §5 (Figures 5–6), parameterised by the
    problem size [n] and the communication-to-computation ratio [c] of
    §5.2: every edge leaving a task [v] carries volume [c * w(v)] ("we
    always communicate the data that has just been updated").

    Exact DAG shapes are rebuilt from the literature the paper cites (see
    DESIGN.md "Substitutions"):

    - {b FORK-JOIN}: source → [n] unit-weight intermediate tasks → sink.
    - {b LAPLACE}: the [n×n] wavefront grid — task [(i,j)] depends on its
      west and north neighbours; all weights 1.
    - {b STENCIL}: the [n×n] grid where task [(i,j)] of row [i] depends on
      the SW/S/SE neighbours of row [i-1]; all weights 1.
    - {b LU}: Gaussian-elimination column updates (Cosnard et al.): tasks
      [(k,j)], [1 ≤ k < j ≤ n], weight [n - k]; task [(k,j)] depends on
      the pivot [(k-1,k)] and on its own column [(k-1,j)].
    - {b DOOLITTLE}: same triangular update structure but the work grows
      with the level — task [(k,j)] has weight [k] (§5.2).
    - {b LDMt}: triangular with a per-level hub: a diagonal task [D_k]
      (weight [k]) gated by [(k-1,k)] fans out to the level's updates
      [(k,j)] (weight [k]), which also depend on [(k-1,j)]. *)

val fork_join : n:int -> ccr:float -> Taskgraph.Graph.t
val laplace : n:int -> ccr:float -> Taskgraph.Graph.t
val stencil : n:int -> ccr:float -> Taskgraph.Graph.t
val lu : n:int -> ccr:float -> Taskgraph.Graph.t
val doolittle : n:int -> ccr:float -> Taskgraph.Graph.t
val ldmt : n:int -> ccr:float -> Taskgraph.Graph.t

(** {2 Extension kernel} (not part of the paper's six; used for broader
    validation)

    {b CHOLESKY}: the same pipelined triangle as LU but with weight
    [j - k] — the work grows away from the diagonal instead of shrinking
    with the level, exercising the schedulers on a third weight profile
    over an identical precedence shape. *)
val cholesky : n:int -> ccr:float -> Taskgraph.Graph.t
