(** The §4.4 toy example (Figure 3): two parents [a0] and [b0]; [a0] feeds
    [a1 a2 a3 ab1 ab2], [b0] feeds [ab1 ab2 b3 b2 b1]; all computation and
    communication costs are 1.

    Task ids follow the paper's assumed priority order (ids break rank
    ties): [a0=0, b0=1, a1=2, a2=3, a3=4, ab1=5, ab2=6, b3=7, b2=8, b1=9],
    so HEFT and ILHA reproduce Figure 4's schedules exactly. *)

val graph : unit -> Taskgraph.Graph.t

(** Human-readable task names, indexed by task id. *)
val task_names : string array
