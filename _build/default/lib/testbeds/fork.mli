(** Fork graphs: one parent [v_0] with an edge to each of [N] children
    (Figure 2).  The graph family of the §2.3 motivating example and the
    §3 NP-completeness proof. *)

(** [uniform ~children ~weight ~data] — all children share [weight]; every
    message carries [data]; the parent also has weight [weight].  Task 0
    is the parent, task [i] is child [i]. *)
val uniform : children:int -> weight:float -> data:float -> Taskgraph.Graph.t

(** [of_weights ~parent_weight ~child_weights ~child_data] — fully general
    fork (used by the Theorem 1 reduction, where [d_i = w_i]).
    @raise Invalid_argument if the arrays differ in length. *)
val of_weights :
  parent_weight:float ->
  child_weights:float array ->
  child_data:float array ->
  Taskgraph.Graph.t

(** The §2.3 example: 6 unit-weight children, unit messages — makespan 3
    under macro-dataflow with 5 processors, 5 under one-port. *)
val example_fig1 : unit -> Taskgraph.Graph.t
