type t = {
  name : string;
  build : n:int -> ccr:float -> Taskgraph.Graph.t;
  paper_b : int;
  min_n : int;
}

let all =
  [
    { name = "lu"; build = (fun ~n ~ccr -> Kernels.lu ~n ~ccr); paper_b = 4; min_n = 2 };
    {
      name = "laplace";
      build = (fun ~n ~ccr -> Kernels.laplace ~n ~ccr);
      paper_b = 38;
      min_n = 1;
    };
    {
      name = "stencil";
      build = (fun ~n ~ccr -> Kernels.stencil ~n ~ccr);
      paper_b = 38;
      min_n = 1;
    };
    {
      name = "fork-join";
      build = (fun ~n ~ccr -> Kernels.fork_join ~n ~ccr);
      paper_b = 38;
      min_n = 1;
    };
    {
      name = "doolittle";
      build = (fun ~n ~ccr -> Kernels.doolittle ~n ~ccr);
      paper_b = 20;
      min_n = 2;
    };
    {
      name = "ldmt";
      build = (fun ~n ~ccr -> Kernels.ldmt ~n ~ccr);
      paper_b = 20;
      min_n = 2;
    };
  ]

let names = List.map (fun t -> t.name) all

let find name =
  let lower = String.lowercase_ascii name in
  match List.find_opt (fun t -> t.name = lower) all with
  | Some t -> t
  | None ->
      invalid_arg
        (Printf.sprintf "Suite.find: unknown testbed %S (known: %s)" name
           (String.concat ", " names))
