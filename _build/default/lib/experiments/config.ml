type t = {
  platform : Platform.t;
  model : Commmodel.Comm_model.t;
  ccr : float;
  policy : Heuristics.Engine.policy;
  sizes : int list;
  seed : int;
}

let paper ?(scale = 1.) () =
  let size s = max 2 (int_of_float (Float.round (scale *. float_of_int s))) in
  {
    platform = Platform.paper_platform ();
    model = Commmodel.Comm_model.one_port;
    ccr = 10.;
    policy = Heuristics.Engine.Insertion;
    sizes = List.map size [ 100; 200; 300; 400; 500 ];
    seed = 42;
  }

let with_model t model = { t with model }
let with_sizes t sizes = { t with sizes }
