let render ?(width = 60) ?(height = 16) ?(y_from_zero = true) ~x_label ~y_label
    series =
  let points = List.concat_map snd series in
  if points = [] then invalid_arg "Plot.render: no points";
  let xs = List.map fst points and ys = List.map snd points in
  let x_min = List.fold_left min (List.hd xs) xs in
  let x_max = List.fold_left max (List.hd xs) xs in
  let y_min =
    if y_from_zero then 0. else List.fold_left min (List.hd ys) ys
  in
  let y_max = List.fold_left max (List.hd ys) ys in
  let x_span = max (x_max -. x_min) 1e-9 in
  let y_span = max (y_max -. y_min) 1e-9 in
  let grid = Array.init height (fun _ -> Bytes.make width ' ') in
  let plot_x x =
    min (width - 1) (int_of_float ((x -. x_min) /. x_span *. float_of_int (width - 1)))
  in
  let plot_y y =
    (* row 0 is the top of the chart *)
    let r = int_of_float ((y -. y_min) /. y_span *. float_of_int (height - 1)) in
    height - 1 - min (height - 1) (max 0 r)
  in
  List.iter
    (fun (name, pts) ->
      let marker = if name = "" then '?' else name.[0] in
      List.iter
        (fun (x, y) ->
          let c = plot_x x and r = plot_y y in
          let cell = Bytes.get grid.(r) c in
          Bytes.set grid.(r) c (if cell = ' ' || cell = marker then marker else '*'))
        pts)
    series;
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "%s vs %s   (markers: %s; * = overlap)\n" y_label x_label
       (String.concat ", "
          (List.map (fun (n, _) -> Printf.sprintf "%c=%s" n.[0] n) series)));
  Array.iteri
    (fun r row ->
      let y_here =
        y_max -. (float_of_int r /. float_of_int (height - 1) *. y_span)
      in
      let label =
        if r = 0 || r = height - 1 || r = (height - 1) / 2 then
          Printf.sprintf "%8.2f " y_here
        else String.make 9 ' '
      in
      Buffer.add_string buf (label ^ "|" ^ Bytes.to_string row ^ "\n"))
    grid;
  Buffer.add_string buf (String.make 9 ' ' ^ "+" ^ String.make width '-' ^ "\n");
  Buffer.add_string buf
    (Printf.sprintf "%9s %-8.6g%*s%8.6g\n" "" x_min (width - 16) "" x_max);
  Buffer.contents buf
