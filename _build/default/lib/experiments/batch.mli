(** Batch grids: run (heuristic × testbed × size) sweeps and collect rows
    for CSV export — the bulk-data companion to the curated {!Figures}
    (plotting scripts consume the CSV; the figures print curated views). *)

type spec = {
  heuristics : Heuristics.Registry.entry list;
  testbeds : Testbeds.Suite.t list;
  sizes : int list;
  use_paper_b : bool;
      (** give ILHA each testbed's §5.3 chunk size (default true) *)
}

(** Everything at the configuration's sizes. *)
val default_spec : Config.t -> spec

(** [run cfg spec] — rows in deterministic order (testbed-major, then
    size, then heuristic). *)
val run : Config.t -> spec -> Runner.row list

(** CSV with a header row; columns match {!Runner.row}. *)
val to_csv : Runner.row list -> string
