module Registry = Heuristics.Registry
module Schedule = Sched.Schedule

type row = {
  testbed : string;
  n : int;
  heuristic : string;
  model : string;
  b : int option;
  makespan : float;
  speedup : float;
  n_comms : int;
  comm_time : float;
  wall_s : float;
  valid : bool;
}

let run_graph (cfg : Config.t) ~heuristic ?b g =
  let is_ilha =
    String.length heuristic.Registry.name >= 4
    && String.sub heuristic.Registry.name 0 4 = "ilha"
  in
  let entry =
    match b with
    | Some b when is_ilha -> Registry.ilha_with ~b ()
    | Some _ | None -> heuristic
  in
  let t0 = Sys.time () in
  let sched =
    entry.Registry.scheduler ~policy:cfg.policy ~model:cfg.model cfg.platform g
  in
  let wall_s = Sys.time () -. t0 in
  let metrics = Sched.Metrics.compute sched in
  {
    testbed = Taskgraph.Graph.name g;
    n = Taskgraph.Graph.n_tasks g;
    heuristic = entry.Registry.name;
    model = Commmodel.Comm_model.name cfg.model;
    b;
    makespan = metrics.Sched.Metrics.makespan;
    speedup = metrics.Sched.Metrics.speedup;
    n_comms = metrics.Sched.Metrics.n_comm_events;
    comm_time = metrics.Sched.Metrics.total_comm_time;
    wall_s;
    valid = Sched.Validate.is_valid sched;
  }

let run cfg ~testbed ~n ~heuristic ?b () =
  let g = testbed.Testbeds.Suite.build ~n ~ccr:cfg.Config.ccr in
  let row = run_graph cfg ~heuristic ?b g in
  { row with testbed = testbed.Testbeds.Suite.name; n }

let table rows =
  let t =
    Prelude.Table.create
      ~columns:
        [ "testbed"; "n"; "heuristic"; "model"; "B"; "makespan"; "speedup";
          "comms"; "valid" ]
  in
  List.iter
    (fun r ->
      Prelude.Table.add_row t
        [
          r.testbed;
          string_of_int r.n;
          r.heuristic;
          r.model;
          (match r.b with Some b -> string_of_int b | None -> "-");
          Printf.sprintf "%.0f" r.makespan;
          Printf.sprintf "%.3f" r.speedup;
          string_of_int r.n_comms;
          (if r.valid then "yes" else "NO");
        ])
    rows;
  t
