(** One runnable experiment per figure/table of the paper, plus the
    ablations DESIGN.md commits to.  Each experiment renders a
    self-describing text report (tables built with {!Prelude.Table});
    the bench harness and the CLI just pick and print.

    Identifiers: [e1] (§2.3 serialization example), [e2] (§4.4 toy,
    Figure 4), [e3] (§5.2 speedup bound), [fig7]–[fig12] (the six testbed
    comparisons), [sweep-b], [models], [insertion], [tournament],
    [robustness], [reductions] (Theorems 1 and 2 checks). *)

type t = {
  id : string;
  title : string;
  paper_claim : string;  (** what the paper reports, for side-by-side *)
  render : Config.t -> string;
}

val all : t list
val ids : string list

(** @raise Invalid_argument on an unknown id. *)
val find : string -> t

(** Render every experiment under one configuration. *)
val render_all : Config.t -> string
