(** ASCII line charts — the textual equivalent of the paper's Figures 7-12
    (speedup vs. problem size, one marker per heuristic), so a bench run
    shows the curve shapes directly in the terminal. *)

(** [render ?width ?height ~x_label ~y_label series] — each series is a
    name (its first character becomes the plot marker) and its [(x, y)]
    points.  Axes are scaled to the data (y from 0 unless [y_from_zero]
    is [false]); colliding markers print ['*'].
    @raise Invalid_argument when no series has points. *)
val render :
  ?width:int ->
  ?height:int ->
  ?y_from_zero:bool ->
  x_label:string ->
  y_label:string ->
  (string * (float * float) list) list ->
  string
