(** Running heuristics on testbeds and collecting the paper's measurements. *)

type row = {
  testbed : string;
  n : int;
  heuristic : string;
  model : string;
  b : int option;  (** chunk size, for ILHA runs *)
  makespan : float;
  speedup : float;  (** fastest-processor sequential time / makespan *)
  n_comms : int;
  comm_time : float;
  wall_s : float;  (** CPU seconds spent scheduling *)
  valid : bool;  (** independent {!Sched.Validate} verdict *)
}

(** [run_graph cfg ~heuristic ?b g] — schedule [g] under the
    configuration; [b] routes to ILHA's chunk size when the entry is ILHA
    (ignored otherwise, [None] uses the entry as registered). *)
val run_graph :
  Config.t -> heuristic:Heuristics.Registry.entry -> ?b:int -> Taskgraph.Graph.t -> row

(** [run cfg ~testbed ~n ~heuristic ?b ()] builds the testbed at size [n]
    with the configuration's ccr and runs it. *)
val run :
  Config.t ->
  testbed:Testbeds.Suite.t ->
  n:int ->
  heuristic:Heuristics.Registry.entry ->
  ?b:int ->
  unit ->
  row

(** Render rows as an aligned table (columns: testbed, n, heuristic, model,
    B, makespan, speedup, comms, valid). *)
val table : row list -> Prelude.Table.t
