(** Experiment configuration.

    [paper ()] is §5.2's setting: the 10-processor platform (5×t=6, 3×t=10,
    2×t=15, unit links), communication-to-computation ratio [c = 10], the
    bi-directional one-port model, insertion-based slot search, and problem
    sizes 100–500.  [scale] shrinks the sizes proportionally for quick runs
    (e.g. [~scale:0.2] turns 100–500 into 20–100). *)

type t = {
  platform : Platform.t;
  model : Commmodel.Comm_model.t;
  ccr : float;
  policy : Heuristics.Engine.policy;
  sizes : int list;
  seed : int;  (** randomised experiments derive their RNG from this *)
}

val paper : ?scale:float -> unit -> t

(** [with_model t m] / [with_sizes t sizes] — field updates. *)
val with_model : t -> Commmodel.Comm_model.t -> t

val with_sizes : t -> int list -> t
