lib/experiments/figures.ml: Array Buffer Commmodel Complexity Config Heuristics List Platform Plot Prelude Printf Rng Runner Sched Simkit Stats String Table Taskgraph Testbeds
