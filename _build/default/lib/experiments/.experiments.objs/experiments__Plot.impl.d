lib/experiments/plot.ml: Array Buffer Bytes List Printf String
