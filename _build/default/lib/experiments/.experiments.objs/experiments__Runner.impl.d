lib/experiments/runner.ml: Commmodel Config Heuristics List Prelude Printf Sched String Sys Taskgraph Testbeds
