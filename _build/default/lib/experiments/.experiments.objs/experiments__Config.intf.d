lib/experiments/config.mli: Commmodel Heuristics Platform
