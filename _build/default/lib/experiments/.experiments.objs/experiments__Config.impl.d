lib/experiments/config.ml: Commmodel Float Heuristics List Platform
