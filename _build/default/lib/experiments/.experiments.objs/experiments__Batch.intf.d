lib/experiments/batch.mli: Config Heuristics Runner Testbeds
