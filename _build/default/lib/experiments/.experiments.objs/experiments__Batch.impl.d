lib/experiments/batch.ml: Buffer Config Heuristics List Printf Runner Testbeds
