lib/experiments/runner.mli: Config Heuristics Prelude Taskgraph Testbeds
