lib/experiments/plot.mli:
