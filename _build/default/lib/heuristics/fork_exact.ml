module Graph = Taskgraph.Graph

type instance = {
  parent_weight : float;
  child_weights : float array;
  child_data : float array;
}

let of_graph g =
  let n = Graph.n_tasks g in
  if n < 1 then None
  else if Graph.entry_tasks g <> [ 0 ] then None
  else if Graph.n_edges g <> n - 1 then None
  else begin
    let ok = ref true in
    let data = Array.make (n - 1) 0. in
    for v = 1 to n - 1 do
      match Graph.find_edge g ~src:0 ~dst:v with
      | Some e -> data.(v - 1) <- e.data
      | None -> ok := false
    done;
    if !ok then
      Some
        {
          parent_weight = Graph.weight g 0;
          child_weights = Array.init (n - 1) (fun i -> Graph.weight g (i + 1));
          child_data = data;
        }
    else None
  end

let makespan inst ~assignment ~send_order =
  let n = Array.length inst.child_weights in
  if Array.length assignment <> n then invalid_arg "Fork_exact.makespan: arity";
  let w0 = inst.parent_weight in
  (* Parent's processor: parent plus local children back to back. *)
  let local =
    Array.to_list assignment
    |> List.mapi (fun i a -> (i, a))
    |> List.filter (fun (_, a) -> a = 0)
    |> List.map fst
  in
  let p0_finish =
    w0 +. List.fold_left (fun acc i -> acc +. inst.child_weights.(i)) 0. local
  in
  (* Sends go back to back from w0; group arrivals per remote processor and
     execute in arrival order. *)
  let remote_count = List.length send_order in
  if remote_count <> n - List.length local then
    invalid_arg "Fork_exact.makespan: send_order must cover remote children";
  let seen = Array.make n false in
  let clock = ref w0 in
  let proc_free = Hashtbl.create 8 in
  let best = ref p0_finish in
  List.iter
    (fun i ->
      if i < 0 || i >= n || assignment.(i) = 0 || seen.(i) then
        invalid_arg "Fork_exact.makespan: bad send_order";
      seen.(i) <- true;
      let arrival = !clock +. inst.child_data.(i) in
      clock := arrival;
      let proc = assignment.(i) in
      let free = try Hashtbl.find proc_free proc with Not_found -> 0. in
      let finish = max free arrival +. inst.child_weights.(i) in
      Hashtbl.replace proc_free proc finish;
      best := max !best finish)
    send_order;
  !best

let rec permutations = function
  | [] -> [ [] ]
  | l ->
      List.concat_map
        (fun x ->
          List.map (fun p -> x :: p) (permutations (List.filter (( <> ) x) l)))
        l

(* With one processor available per remote child, grouping children on a
   shared remote processor only adds constraints, and for distinct
   receivers the optimal send order is by non-increasing child weight (an
   adjacent exchange with w_A >= w_B never increases
   max(prefix + d_A + w_A, prefix + d_A + d_B + w_B)).  So the exact
   optimum reduces to enumerating the subset kept on the parent's
   processor. *)
let optimal_unlimited inst =
  let n = Array.length inst.child_weights in
  let order = Array.init n Fun.id in
  Array.sort
    (fun i j ->
      match compare inst.child_weights.(j) inst.child_weights.(i) with
      | 0 -> compare i j
      | c -> c)
    order;
  let best = ref infinity in
  (* Subsets as bitmasks: bit i set = child i stays on P0. *)
  for mask = 0 to (1 lsl n) - 1 do
    let p0_finish = ref inst.parent_weight in
    for i = 0 to n - 1 do
      if mask land (1 lsl i) <> 0 then
        p0_finish := !p0_finish +. inst.child_weights.(i)
    done;
    let span = ref !p0_finish in
    let clock = ref inst.parent_weight in
    Array.iter
      (fun i ->
        if mask land (1 lsl i) = 0 then begin
          clock := !clock +. inst.child_data.(i);
          span := max !span (!clock +. inst.child_weights.(i))
        end)
      order;
    if !span < !best then best := !span
  done;
  !best

(* Enumerate assignments as restricted-growth strings: child i maps to 0
   (parent's processor) or to remote group g where g <= (max group so far) + 1
   and the number of remote groups stays below [max_remote]. *)
let optimal_makespan ?max_procs inst =
  let n = Array.length inst.child_weights in
  let max_remote =
    match max_procs with
    | None -> n
    | Some p when p >= 1 -> p - 1
    | Some _ -> invalid_arg "Fork_exact.optimal_makespan: max_procs < 1"
  in
  if max_remote >= n then
    (if n > 20 then
       invalid_arg "Fork_exact.optimal_makespan: more than 20 children"
     else if n = 0 then inst.parent_weight
     else optimal_unlimited inst)
  else begin
  if n > 8 then invalid_arg "Fork_exact.optimal_makespan: more than 8 children";
  let assignment = Array.make n 0 in
  let best = ref infinity in
  let evaluate () =
    let remote =
      List.filter (fun i -> assignment.(i) <> 0) (List.init n Fun.id)
    in
    List.iter
      (fun order ->
        let m = makespan inst ~assignment ~send_order:order in
        if m < !best then best := m)
      (permutations remote)
  in
  let rec enumerate i max_group =
    if i = n then evaluate ()
    else
      for a = 0 to min (max_group + 1) max_remote do
        assignment.(i) <- a;
        enumerate (i + 1) (max max_group a)
      done
  in
  if n = 0 then inst.parent_weight
  else begin
    enumerate 0 0;
    !best
  end
  end

let trivial_lower_bound inst =
  let n = Array.length inst.child_weights in
  if n = 0 then inst.parent_weight
  else inst.parent_weight +. Array.fold_left min infinity inst.child_weights
