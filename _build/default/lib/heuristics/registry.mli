(** Name-indexed scheduler registry used by the CLI, the experiment harness
    and the tournament bench. *)

type scheduler =
  ?policy:Engine.policy ->
  model:Commmodel.Comm_model.t ->
  Platform.t ->
  Taskgraph.Graph.t ->
  Sched.Schedule.t

type entry = {
  name : string;
  description : string;
  scheduler : scheduler;
  scalable : bool;
      (** [false] for quadratic-in-ready-set heuristics (GDL) that should
          be skipped on very large graphs *)
}

(** All registered heuristics.  ILHA appears with its default B; use
    {!ilha_with} for explicit chunk sizes. *)
val all : entry list

val names : string list

(** @raise Invalid_argument on an unknown name. *)
val find : string -> entry

(** [ilha_with ?b ?scan ?reschedule ()] — a parameterised ILHA entry
    (name encodes the parameters, e.g. ["ilha[b=4]"]). *)
val ilha_with : ?b:int -> ?scan:Ilha.scan -> ?reschedule:bool -> unit -> entry
