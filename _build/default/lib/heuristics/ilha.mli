(** ILHA — Iso-Level Heterogeneous Allocation (§4.2, §4.4).

    Instead of mapping one task at a time, ILHA grabs the [B] ready tasks
    of highest bottom level and maps the chunk with an explicit
    load-balancing target: processor [P_i] may take at most the fraction
    [c_i] (§4.1) of the chunk's total weight.  Two scans follow (§4.4):

    - {b Step 1}: tasks whose parents all live on one processor are placed
      there — generating {e zero} communications — as long as that
      processor's chunk quota is not exceeded;
    - {b Step 2}: the remaining tasks fall back to HEFT's
      earliest-finish-time rule.

    §4.4 sketches two refinements, both implemented here: an additional
    scan accepting placements that cost a {e single} communication
    ([`Scan_one_comm]), and a third step that keeps only the chunk's
    {e allocation} and re-schedules chunk tasks greedily by globally
    smallest finish time ([reschedule = true]; the underlying decision
    problem is NP-complete — Theorem 2 — hence a greedy). *)

type scan =
  | Scan_zero_comm  (** the paper's Step 1 *)
  | Scan_one_comm
      (** Step 1, then a second scan accepting one crossing edge *)

(** [schedule ?policy ?b ?scan ?reschedule ~model plat g].

    [b] defaults to the platform's perfect-balance chunk
    {!Load_balance.perfect_chunk} when cycle-times are integral (38 on the
    paper platform, the default used in §5.3) and to the processor count
    otherwise; values below the processor count are allowed but §4.2 notes
    they waste processors.
    @raise Invalid_argument if [b < 1]. *)
val schedule :
  ?policy:Engine.policy ->
  ?b:int ->
  ?scan:scan ->
  ?reschedule:bool ->
  model:Commmodel.Comm_model.t ->
  Platform.t ->
  Taskgraph.Graph.t ->
  Sched.Schedule.t

(** The default chunk size for a platform (see above). *)
val default_b : Platform.t -> int
