(** Exact one-port scheduling of fork graphs on same-speed processors.

    The setting of the paper's §2.3 example and §3 complexity proof: a
    parent task [v_0] fanning out to [N] children over a fully homogeneous
    network (unit cycle-times, unit link cost), under the bi-directional
    one-port model.  Here brute force is genuinely exact, because the
    optimal schedule necessarily has this shape:

    - the parent runs at time 0 on some processor [P_0]; a subset of
      children runs on [P_0] right after it (no communication);
    - remote children receive their message through [P_0]'s send port —
      the only contended resource — so a schedule is determined by the
      assignment of children to processors and the order of sends, sent
      back to back starting when the parent completes;
    - each remote processor executes its children greedily in arrival
      order (earliest-release-date is optimal for makespan on one
      machine).

    We enumerate set partitions of the children (canonical
    restricted-growth labelling kills processor symmetry) times send
    permutations; sizes are capped accordingly. *)

type instance = {
  parent_weight : float;
  child_weights : float array;
  child_data : float array;  (** message volume to each child *)
}

(** Recognise a fork graph: task 0 is the only entry and every other task
    is a direct child of it. *)
val of_graph : Taskgraph.Graph.t -> instance option

(** [makespan inst ~assignment ~send_order] evaluates one concrete
    schedule shape: [assignment.(i) = 0] keeps child [i] on the parent's
    processor, other values group children on remote processors;
    [send_order] lists remote children in sending order (children of
    assignment 0 must not appear).
    @raise Invalid_argument on inconsistent arguments. *)
val makespan : instance -> assignment:int array -> send_order:int list -> float

(** [optimal_makespan ?max_procs inst] — exhaustive optimum with at most
    [max_procs] processors (default: one per task).  When every remote
    child can have its own processor the search reduces to subset
    enumeration with a provably optimal (non-increasing weight) send order
    and handles up to 20 children; with fewer processors the full
    partition × permutation enumeration caps at 8 children.
    @raise Invalid_argument beyond those sizes. *)
val optimal_makespan : ?max_procs:int -> instance -> float

(** Lower bound used for quick sanity checks:
    [max(w0 + min_i(w_i), w0 + (sum of remote-necessary comms...))] is
    model-dependent; this returns the trivial bound
    [w0 + max(0, min over nonempty subsets ...)] simplified to
    [w0 + min_i w_i] when [N > 0], and [w0] otherwise. *)
val trivial_lower_bound : instance -> float
