module Graph = Taskgraph.Graph
module Schedule = Sched.Schedule

let default_handle engine v =
  let (_ : Engine.eval) = Engine.schedule_best engine ~task:v in
  ()

let run ?policy ~model ~priority ?(handle = default_handle) plat g =
  let sched = Schedule.create ~graph:g ~platform:plat ~model () in
  let engine = Engine.create ?policy sched in
  let ready = Prelude.Pqueue.create ~compare:(Ranking.compare_priority priority) in
  let remaining = Array.init (Graph.n_tasks g) (Graph.in_degree g) in
  for v = 0 to Graph.n_tasks g - 1 do
    if remaining.(v) = 0 then Prelude.Pqueue.add ready v
  done;
  let rec drain () =
    match Prelude.Pqueue.pop ready with
    | None -> ()
    | Some v ->
        handle engine v;
        Graph.iter_succ_edges g v ~f:(fun e ->
            let u = Graph.edge_dst g e in
            remaining.(u) <- remaining.(u) - 1;
            if remaining.(u) = 0 then Prelude.Pqueue.add ready u);
        drain ()
  in
  drain ();
  sched
