(** The paper's optimal load-balancing distribution (§4.2).

    Distributing [n] equal-size tasks over processors of cycle-times
    [t_1..t_p] so the maximum finish time [max_i (c_i * t_i)] is minimal:
    start from [c_i = floor(n * (1/t_i) / sum(1/t_j))] and hand out the
    remaining tasks one by one to the processor minimising [t_k (c_k + 1)]
    — proved optimal in the paper's reference [2]. *)

(** [fractions plat] — the ideal real-valued shares [c_i] of §4.1 (sum to 1). *)
val fractions : Platform.t -> float array

(** [distribute plat ~n] — optimal integer counts summing to [n].
    @raise Invalid_argument if [n < 0]. *)
val distribute : Platform.t -> n:int -> int array

(** [round_time plat counts] is [max_i t_i * counts.(i)] — the time to
    process one round of that distribution. *)
val round_time : Platform.t -> int array -> float

(** [is_optimal plat counts] checks optimality of a distribution of
    [sum counts] tasks by comparing against {!distribute} (used by property
    tests; optimal distributions need not be unique but optimal round times
    are). *)
val is_optimal : Platform.t -> int array -> bool

(** [perfect_chunk plat] — the smallest chunk size B achieving perfect
    balance, [M = lcm(t_1..t_p) * sum(1/t_i)] (§5.3; 38 on the paper
    platform).
    @raise Invalid_argument unless every cycle-time is a positive integer. *)
val perfect_chunk : Platform.t -> int
