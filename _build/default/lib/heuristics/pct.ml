let schedule ?policy ~model plat g =
  List_loop.run ?policy ~model ~priority:(Ranking.upward_min g plat) plat g
