open Prelude

let fractions plat =
  Array.init (Platform.p plat) (fun i -> Platform.balanced_fraction plat i)

let distribute plat ~n =
  if n < 0 then invalid_arg "Load_balance.distribute: n < 0";
  let p = Platform.p plat in
  let fracs = fractions plat in
  let counts =
    Array.init p (fun i -> int_of_float (floor (fracs.(i) *. float_of_int n)))
  in
  let assigned = Array.fold_left ( + ) 0 counts in
  (* Hand out the remaining tasks greedily: the processor whose finish time
     after one more task is smallest (ties to the lower index). *)
  for _ = assigned + 1 to n do
    let best = ref 0 in
    let best_time = ref infinity in
    for k = 0 to p - 1 do
      let time = Platform.cycle_time plat k *. float_of_int (counts.(k) + 1) in
      if time < !best_time then begin
        best := k;
        best_time := time
      end
    done;
    counts.(!best) <- counts.(!best) + 1
  done;
  counts

let round_time plat counts =
  let time = ref 0. in
  Array.iteri
    (fun i c ->
      time := max !time (Platform.cycle_time plat i *. float_of_int c))
    counts;
  !time

let is_optimal plat counts =
  let n = Array.fold_left ( + ) 0 counts in
  Stats.fequal (round_time plat counts) (round_time plat (distribute plat ~n))

let perfect_chunk plat =
  let cts =
    Array.to_list (Platform.cycle_times plat)
    |> List.map (fun ct ->
           if Float.is_integer ct && ct > 0. then int_of_float ct
           else
             invalid_arg
               "Load_balance.perfect_chunk: cycle-times must be positive \
                integers")
  in
  let l = Stats.lcm_list cts in
  List.fold_left (fun acc t -> acc + (l / t)) 0 cts
