type scheduler =
  ?policy:Engine.policy ->
  model:Commmodel.Comm_model.t ->
  Platform.t ->
  Taskgraph.Graph.t ->
  Sched.Schedule.t

type entry = {
  name : string;
  description : string;
  scheduler : scheduler;
  scalable : bool;
}

let heft = {
  name = "heft";
  description = "Heterogeneous Earliest Finish Time (Topcuoglu et al.)";
  scheduler = (fun ?policy -> Heft.schedule ?policy ?averaging:None);
  scalable = true;
}

let ilha_with ?b ?scan ?reschedule () =
  let name =
    let params =
      List.concat
        [
          (match b with Some b -> [ Printf.sprintf "b=%d" b ] | None -> []);
          (match scan with
          | Some Ilha.Scan_one_comm -> [ "scan=1comm" ]
          | Some Ilha.Scan_zero_comm | None -> []);
          (match reschedule with Some true -> [ "resched" ] | _ -> []);
        ]
    in
    if params = [] then "ilha"
    else Printf.sprintf "ilha[%s]" (String.concat "," params)
  in
  {
    name;
    description = "Iso-Level Heterogeneous Allocation (Beaumont et al.)";
    scheduler = (fun ?policy -> Ilha.schedule ?policy ?b ?scan ?reschedule);
    scalable = true;
  }

let all =
  [
    heft;
    ilha_with ();
    {
      name = "cpop";
      description = "Critical Path On a Processor (Topcuoglu et al.)";
      scheduler = Cpop.schedule;
      scalable = true;
    };
    {
      name = "pct";
      description = "minimum Partial Completion Time priority (Maheswaran-Siegel)";
      scheduler = Pct.schedule;
      scalable = true;
    };
    {
      name = "bil";
      description = "Best Imaginary Level (Oh-Ha)";
      scheduler = Bil.schedule;
      scalable = true;
    };
    {
      name = "gdl";
      description = "Generalized Dynamic Level (Sih-Lee)";
      scheduler = Gdl.schedule;
      scalable = false;
    };
    {
      name = "etf";
      description = "Earliest Task First (Hwang et al.)";
      scheduler = Etf.schedule;
      scalable = false;
    };
    {
      name = "ilha-auto";
      description = "ILHA with automated chunk-size search";
      scheduler = (fun ?policy -> Auto_b.schedule ?policy ?candidates:None);
      scalable = true;
    };
  ]

let names = List.map (fun e -> e.name) all

let find name =
  match List.find_opt (fun e -> e.name = name) all with
  | Some e -> e
  | None ->
      invalid_arg
        (Printf.sprintf "Registry.find: unknown heuristic %S (known: %s)" name
           (String.concat ", " names))
