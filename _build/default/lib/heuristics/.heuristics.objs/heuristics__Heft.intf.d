lib/heuristics/heft.mli: Commmodel Engine Platform Ranking Sched Taskgraph
