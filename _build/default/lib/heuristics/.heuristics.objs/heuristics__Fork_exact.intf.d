lib/heuristics/fork_exact.mli: Taskgraph
