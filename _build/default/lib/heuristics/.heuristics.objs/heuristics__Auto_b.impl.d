lib/heuristics/auto_b.ml: Ilha List Load_balance Platform Sched
