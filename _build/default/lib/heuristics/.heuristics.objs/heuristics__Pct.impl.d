lib/heuristics/pct.ml: List_loop Ranking
