lib/heuristics/bil.ml: Array Engine List_loop Platform Taskgraph
