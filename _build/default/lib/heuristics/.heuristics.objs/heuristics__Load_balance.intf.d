lib/heuristics/load_balance.mli: Platform
