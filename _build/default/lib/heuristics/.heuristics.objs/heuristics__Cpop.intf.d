lib/heuristics/cpop.mli: Commmodel Engine Platform Sched Taskgraph
