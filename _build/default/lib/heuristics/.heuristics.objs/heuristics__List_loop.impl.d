lib/heuristics/list_loop.ml: Array Engine Prelude Ranking Sched Taskgraph
