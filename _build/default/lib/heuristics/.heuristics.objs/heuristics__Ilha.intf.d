lib/heuristics/ilha.mli: Commmodel Engine Platform Sched Taskgraph
