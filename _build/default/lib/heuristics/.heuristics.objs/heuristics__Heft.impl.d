lib/heuristics/heft.ml: List_loop Ranking
