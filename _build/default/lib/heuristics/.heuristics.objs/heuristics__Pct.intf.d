lib/heuristics/pct.mli: Commmodel Engine Platform Sched Taskgraph
