lib/heuristics/engine.mli: Sched
