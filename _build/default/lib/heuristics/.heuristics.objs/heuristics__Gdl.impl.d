lib/heuristics/gdl.ml: Array Engine List Platform Ranking Sched Taskgraph
