lib/heuristics/refine.ml: Array Engine Fun Hashtbl List List_loop Platform Prelude Ranking Sched Taskgraph
