lib/heuristics/refine.mli: Commmodel Engine Platform Sched Taskgraph
