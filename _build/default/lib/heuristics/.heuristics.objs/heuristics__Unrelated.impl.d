lib/heuristics/unrelated.ml: Array Engine Platform Prelude Ranking Sched Taskgraph
