lib/heuristics/cpop.ml: Array Engine List List_loop Platform Prelude Ranking Taskgraph
