lib/heuristics/search.mli: Commmodel Engine Platform Sched Taskgraph
