lib/heuristics/auto_b.mli: Commmodel Engine Platform Sched Taskgraph
