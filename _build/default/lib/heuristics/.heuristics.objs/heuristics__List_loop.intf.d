lib/heuristics/list_loop.mli: Commmodel Engine Platform Sched Taskgraph
