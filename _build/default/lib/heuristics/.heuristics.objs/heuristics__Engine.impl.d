lib/heuristics/engine.ml: Fun List Option Platform Prelude Sched Taskgraph Timeline
