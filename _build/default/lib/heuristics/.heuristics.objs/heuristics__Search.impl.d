lib/heuristics/search.ml: Engine Heft List Platform Sched Taskgraph
