lib/heuristics/anneal.mli: Engine Sched
