lib/heuristics/fork_exact.ml: Array Fun Hashtbl List Taskgraph
