lib/heuristics/registry.mli: Commmodel Engine Ilha Platform Sched Taskgraph
