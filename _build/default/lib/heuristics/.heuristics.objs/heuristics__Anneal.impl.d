lib/heuristics/anneal.ml: Array Platform Prelude Refine Rng Sched Taskgraph
