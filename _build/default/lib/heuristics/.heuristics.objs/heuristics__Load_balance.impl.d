lib/heuristics/load_balance.ml: Array Float List Platform Prelude Stats
