lib/heuristics/gdl.mli: Commmodel Engine Platform Sched Taskgraph
