lib/heuristics/ilha.ml: Array Engine List Load_balance Platform Prelude Ranking Sched Taskgraph
