lib/heuristics/unrelated.mli: Commmodel Engine Platform Sched Taskgraph
