lib/heuristics/registry.ml: Auto_b Bil Commmodel Cpop Engine Etf Gdl Heft Ilha List Pct Platform Printf Sched String Taskgraph
