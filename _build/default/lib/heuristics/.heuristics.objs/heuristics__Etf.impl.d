lib/heuristics/etf.ml: Array Engine List Platform Prelude Ranking Sched Taskgraph
