lib/heuristics/ranking.mli: Platform Taskgraph
