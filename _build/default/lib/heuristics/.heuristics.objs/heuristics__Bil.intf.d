lib/heuristics/bil.mli: Commmodel Engine Platform Sched Taskgraph
