lib/heuristics/etf.mli: Commmodel Engine Platform Sched Taskgraph
