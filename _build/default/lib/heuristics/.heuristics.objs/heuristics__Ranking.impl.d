lib/heuristics/ranking.ml: Array Platform Prelude Taskgraph
