let schedule ?policy ?averaging ~model plat g =
  List_loop.run ?policy ~model ~priority:(Ranking.upward ?averaging g plat) plat g
