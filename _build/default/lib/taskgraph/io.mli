(** Plain-text task-graph format (load/save), so the CLI can schedule
    user-supplied applications.

    Line-oriented; [#] starts a comment; blank lines are ignored:

    {v
    # my application
    graph my-app
    task 0 2.5
    task 1 4
    edge 0 1 10
    v}

    Task ids must form [0 .. n-1] (any order, each exactly once); edges
    reference declared tasks.  {!to_string} followed by {!of_string} is the
    identity on any graph (property-tested). *)

(** [of_string text] parses a graph.
    @raise Invalid_argument with a line-numbered message on malformed
    input. *)
val of_string : string -> Graph.t

val to_string : Graph.t -> string

(** [load path] / [save g path] — file wrappers around the above. *)
val load : string -> Graph.t

val save : Graph.t -> string -> unit
