let top g =
  let n = Graph.n_tasks g in
  let level = Array.make n 0 in
  let order = Graph.topological_order g in
  Array.iter
    (fun v ->
      Graph.iter_pred_edges g v ~f:(fun e ->
          let u = Graph.edge_src g e in
          if level.(u) + 1 > level.(v) then level.(v) <- level.(u) + 1))
    order;
  level

let bottom g =
  let n = Graph.n_tasks g in
  let level = Array.make n 0 in
  let order = Graph.topological_order g in
  for i = n - 1 downto 0 do
    let v = order.(i) in
    Graph.iter_succ_edges g v ~f:(fun e ->
        let u = Graph.edge_dst g e in
        if level.(u) + 1 > level.(v) then level.(v) <- level.(u) + 1)
  done;
  level

let depth g =
  if Graph.n_tasks g = 0 then 0
  else 1 + Array.fold_left max 0 (top g)

let groups g =
  let levels = top g in
  let d = if Graph.n_tasks g = 0 then 0 else 1 + Array.fold_left max 0 levels in
  let acc = Array.make d [] in
  for v = Graph.n_tasks g - 1 downto 0 do
    acc.(levels.(v)) <- v :: acc.(levels.(v))
  done;
  acc

let width g =
  Array.fold_left (fun m l -> max m (List.length l)) 0 (groups g)
