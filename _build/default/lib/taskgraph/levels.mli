(** Precedence levels of a DAG (unit-cost top/bottom levels).

    ILHA groups tasks "that will be ready at the same time-step" (§4.2):
    the 0-level holds the entry tasks and level [i+1] the tasks whose last
    predecessor sits in level [i] — i.e. the hop-count top level.  These
    functions work on the bare graph; the time-weighted ranks that account
    for heterogeneous speeds live in {!Heuristics.Ranking}. *)

(** [top g] — [top.(v)] is the length (in hops) of the longest path from an
    entry task to [v]; entry tasks have level 0. *)
val top : Graph.t -> int array

(** [bottom g] — [bottom.(v)] is the length (in hops) of the longest path
    from [v] to an exit task; exit tasks have level 0. *)
val bottom : Graph.t -> int array

(** [depth g] is [1 + max top] — the number of precedence levels. *)
val depth : Graph.t -> int

(** [groups g] lists the tasks of each top level, level 0 first, ascending
    task ids inside a level. *)
val groups : Graph.t -> int list array

(** [width g] is the size of the largest level — an upper bound on useful
    parallelism. *)
val width : Graph.t -> int
