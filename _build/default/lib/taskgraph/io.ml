let fail line_no fmt =
  Printf.ksprintf
    (fun msg -> invalid_arg (Printf.sprintf "Io.of_string: line %d: %s" line_no msg))
    fmt

let tokens line =
  (* strip comments, split on whitespace *)
  let line =
    match String.index_opt line '#' with
    | Some i -> String.sub line 0 i
    | None -> line
  in
  String.split_on_char ' ' line
  |> List.concat_map (String.split_on_char '\t')
  |> List.filter (fun t -> t <> "")

let parse_float line_no what s =
  match float_of_string_opt s with
  | Some f -> f
  | None -> fail line_no "bad %s %S" what s

let parse_int line_no what s =
  match int_of_string_opt s with
  | Some i -> i
  | None -> fail line_no "bad %s %S" what s

let of_string text =
  let name = ref "graph" in
  let tasks = Hashtbl.create 16 in
  let edges = ref [] in
  List.iteri
    (fun i line ->
      let line_no = i + 1 in
      match tokens line with
      | [] -> ()
      | [ "graph"; n ] -> name := n
      | [ "task"; id; weight ] ->
          let id = parse_int line_no "task id" id in
          if Hashtbl.mem tasks id then fail line_no "duplicate task %d" id;
          Hashtbl.add tasks id (parse_float line_no "weight" weight)
      | [ "edge"; src; dst; data ] ->
          edges :=
            ( parse_int line_no "edge source" src,
              parse_int line_no "edge destination" dst,
              parse_float line_no "edge data" data )
            :: !edges
      | tok :: _ -> fail line_no "unknown directive %S" tok)
    (String.split_on_char '\n' text);
  let n = Hashtbl.length tasks in
  let weights =
    Array.init n (fun id ->
        match Hashtbl.find_opt tasks id with
        | Some w -> w
        | None -> invalid_arg (Printf.sprintf "Io.of_string: missing task %d (ids must be 0..%d)" id (n - 1)))
  in
  Graph.create ~name:!name ~weights ~edges:(List.rev !edges) ()

let to_string g =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "graph %s\n" (Graph.name g));
  for v = 0 to Graph.n_tasks g - 1 do
    Buffer.add_string buf (Printf.sprintf "task %d %.17g\n" v (Graph.weight g v))
  done;
  List.iter
    (fun (e : Graph.edge) ->
      Buffer.add_string buf (Printf.sprintf "edge %d %d %.17g\n" e.src e.dst e.data))
    (Graph.edges g);
  Buffer.contents buf

let load path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> of_string (really_input_string ic (in_channel_length ic)))

let save g path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string g))
