(** Random DAG generators for property-based testing and stress benches.

    All generators are deterministic functions of the supplied {!Prelude.Rng}
    state.  Weights and volumes are drawn as small positive integers stored
    as floats, so all schedule arithmetic in tests is exact. *)

(** [layered rng ~layers ~width ~edge_prob ~max_weight ~max_data] — a DAG of
    [layers] levels of up to [width] tasks; each pair of tasks in adjacent
    layers is connected with probability [edge_prob]; tasks with no
    predecessor in the previous layer get one forced edge so the level
    structure is preserved. *)
val layered :
  Prelude.Rng.t ->
  layers:int ->
  width:int ->
  edge_prob:float ->
  max_weight:int ->
  max_data:int ->
  Graph.t

(** [erdos_renyi rng ~n ~edge_prob ~max_weight ~max_data] — each pair
    [(i, j)] with [i < j] is an edge with probability [edge_prob] (ordering
    by task id guarantees acyclicity). *)
val erdos_renyi :
  Prelude.Rng.t ->
  n:int ->
  edge_prob:float ->
  max_weight:int ->
  max_data:int ->
  Graph.t

(** [out_tree rng ~n ~max_arity ~max_weight ~max_data] — a random rooted
    out-tree: task 0 is the root; every other task picks a parent among the
    earlier tasks with fewer than [max_arity] children. *)
val out_tree :
  Prelude.Rng.t ->
  n:int ->
  max_arity:int ->
  max_weight:int ->
  max_data:int ->
  Graph.t

(** [series_parallel rng ~depth ~max_weight ~max_data] — random two-terminal
    series-parallel DAG built by recursive series/parallel composition;
    exercises fork/join nesting. *)
val series_parallel :
  Prelude.Rng.t -> depth:int -> max_weight:int -> max_data:int -> Graph.t
