(** Graphviz export of task graphs and (optionally) schedules.

    [to_string g] renders the DAG with task weights and edge volumes;
    [with_allocation] colours tasks by the processor chosen by a scheduler
    so allocations can be inspected visually. *)

val to_string : Graph.t -> string

(** [with_allocation g ~proc_of] colours each task by [proc_of task]
    (palette cycles over 12 colours). *)
val with_allocation : Graph.t -> proc_of:(int -> int) -> string

val to_file : Graph.t -> string -> unit
