lib/taskgraph/io.mli: Graph
