lib/taskgraph/analysis.ml: Array Format Graph Levels List
