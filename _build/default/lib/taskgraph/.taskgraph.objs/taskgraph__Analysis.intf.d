lib/taskgraph/analysis.mli: Format Graph
