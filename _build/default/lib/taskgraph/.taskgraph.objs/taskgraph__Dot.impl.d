lib/taskgraph/dot.ml: Array Buffer Fun Graph List Printf
