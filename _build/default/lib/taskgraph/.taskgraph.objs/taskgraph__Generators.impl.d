lib/taskgraph/generators.ml: Array Fun Graph List Prelude Rng Vec
