lib/taskgraph/levels.mli: Graph
