lib/taskgraph/levels.ml: Array Graph List
