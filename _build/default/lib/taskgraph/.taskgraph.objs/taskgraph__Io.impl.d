lib/taskgraph/io.ml: Array Buffer Fun Graph Hashtbl List Printf String
