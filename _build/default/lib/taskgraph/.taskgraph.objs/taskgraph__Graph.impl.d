lib/taskgraph/graph.ml: Array Float Format Int List Prelude Printf String
