lib/taskgraph/generators.mli: Graph Prelude
