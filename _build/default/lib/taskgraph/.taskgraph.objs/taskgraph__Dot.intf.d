lib/taskgraph/dot.mli: Graph
