type summary = {
  n_tasks : int;
  n_edges : int;
  total_weight : float;
  total_data : float;
  depth : int;
  width : int;
  max_in_degree : int;
  max_out_degree : int;
  critical_path_weight : float;
  ccr : float;
}

(* Longest weight-to-exit per task; shared by the two critical-path
   functions.  [comm_scale] charges edges at [comm_scale * data]. *)
let downward_cost g ~comm_scale =
  let n = Graph.n_tasks g in
  let cost = Array.make n 0. in
  let order = Graph.topological_order g in
  for i = n - 1 downto 0 do
    let v = order.(i) in
    let best = ref 0. in
    Graph.iter_succ_edges g v ~f:(fun e ->
        let u = Graph.edge_dst g e in
        let c = (comm_scale *. Graph.edge_data g e) +. cost.(u) in
        if c > !best then best := c);
    cost.(v) <- Graph.weight g v +. !best
  done;
  cost

let critical_path_weight g =
  if Graph.n_tasks g = 0 then 0.
  else Array.fold_left max 0. (downward_cost g ~comm_scale:0.)

let critical_path ?(comm_scale = 0.) g =
  if Graph.n_tasks g = 0 then []
  else begin
    let cost = downward_cost g ~comm_scale in
    let start = ref 0 in
    Array.iteri (fun v _ -> if cost.(v) > cost.(!start) then start := v) cost;
    let rec follow v acc =
      let next = ref None in
      Graph.iter_succ_edges g v ~f:(fun e ->
          let u = Graph.edge_dst g e in
          let c = (comm_scale *. Graph.edge_data g e) +. cost.(u) in
          let better =
            match !next with
            | None -> true
            | Some (_, best) -> c > best
          in
          if better then next := Some (u, c));
      match !next with
      | None -> List.rev (v :: acc)
      | Some (u, _) -> follow u (v :: acc)
    in
    follow !start []
  end

let summarize g =
  let n = Graph.n_tasks g in
  let total_data =
    List.fold_left (fun acc (e : Graph.edge) -> acc +. e.data) 0. (Graph.edges g)
  in
  let max_deg f =
    let best = ref 0 in
    for v = 0 to n - 1 do
      if f g v > !best then best := f g v
    done;
    !best
  in
  let total_weight = Graph.total_weight g in
  {
    n_tasks = n;
    n_edges = Graph.n_edges g;
    total_weight;
    total_data;
    depth = Levels.depth g;
    width = Levels.width g;
    max_in_degree = max_deg Graph.in_degree;
    max_out_degree = max_deg Graph.out_degree;
    critical_path_weight = critical_path_weight g;
    ccr = (if total_weight > 0. then total_data /. total_weight else 0.);
  }

let pp_summary fmt s =
  Format.fprintf fmt
    "@[<v>tasks: %d@ edges: %d@ total weight: %g@ total data: %g@ depth: %d@ \
     width: %d@ max in-degree: %d@ max out-degree: %d@ critical path weight: \
     %g@ ccr: %.3f@]"
    s.n_tasks s.n_edges s.total_weight s.total_data s.depth s.width
    s.max_in_degree s.max_out_degree s.critical_path_weight s.ccr

let sequential_time g ~cycle_time = Graph.total_weight g *. cycle_time
