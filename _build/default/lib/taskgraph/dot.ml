let palette =
  [| "#8dd3c7"; "#ffffb3"; "#bebada"; "#fb8072"; "#80b1d3"; "#fdb462";
     "#b3de69"; "#fccde5"; "#d9d9d9"; "#bc80bd"; "#ccebc5"; "#ffed6f" |]

let render ?proc_of g =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "digraph %S {\n  rankdir=TB;\n" (Graph.name g));
  for v = 0 to Graph.n_tasks g - 1 do
    let colour =
      match proc_of with
      | None -> ""
      | Some f ->
          Printf.sprintf ", style=filled, fillcolor=%S"
            palette.(f v mod Array.length palette)
    in
    Buffer.add_string buf
      (Printf.sprintf "  t%d [label=\"v%d\\nw=%g\"%s];\n" v v (Graph.weight g v)
         colour)
  done;
  List.iter
    (fun (e : Graph.edge) ->
      Buffer.add_string buf
        (Printf.sprintf "  t%d -> t%d [label=\"%g\"];\n" e.src e.dst e.data))
    (Graph.edges g);
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let to_string g = render g
let with_allocation g ~proc_of = render ~proc_of g

let to_file g path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string g))
