(** Structural analysis of task graphs: critical paths and summary shape
    statistics used by the experiment reports and by DESIGN.md's testbed
    characterisation. *)

type summary = {
  n_tasks : int;
  n_edges : int;
  total_weight : float;
  total_data : float;
  depth : int;  (** number of precedence levels *)
  width : int;  (** widest level *)
  max_in_degree : int;
  max_out_degree : int;
  critical_path_weight : float;
      (** longest path counting task weights only (communication-free lower
          bound on any makespan at unit speed) *)
  ccr : float;
      (** communication-to-computation ratio: total_data / total_weight
          (0 when there is no work) *)
}

val summarize : Graph.t -> summary
val pp_summary : Format.formatter -> summary -> unit

(** [critical_path_weight g] — maximum over paths of the sum of task
    weights (no communication). *)
val critical_path_weight : Graph.t -> float

(** [critical_path ?comm_scale g] returns one longest path (task list from
    an entry to an exit task) where edge [e] additionally costs
    [comm_scale * data e] (default 0). *)
val critical_path : ?comm_scale:float -> Graph.t -> int list

(** [sequential_time g ~cycle_time] — time for one processor of the given
    cycle-time to run every task (the paper's baseline uses the fastest
    processor, §5.2). *)
val sequential_time : Graph.t -> cycle_time:float -> float
