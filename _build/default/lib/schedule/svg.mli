(** Standalone SVG rendering of schedules (no external dependencies).

    One horizontal lane group per processor — a wide compute lane plus
    thin send/receive port lanes under port-restricted models — with tasks
    as labelled boxes coloured by task id and communications as boxes
    coloured by edge id, so a message can be traced from the sender's send
    lane to the receiver's recv lane.  A time axis with tick marks runs
    along the bottom.  The output opens directly in any browser. *)

(** [render ?width ?lane_height ?show_ports s] — [width] is the drawing
    width in pixels (default 1000); port lanes default to the model's
    {!Commmodel.Comm_model.restricts_ports}. *)
val render :
  ?width:int -> ?lane_height:int -> ?show_ports:bool -> Schedule.t -> string

(** [save s path] — write {!render} output to a file. *)
val save : Schedule.t -> string -> unit
