module Graph = Taskgraph.Graph

type t = {
  makespan_a : float;
  makespan_b : float;
  makespan_ratio : float;
  same_allocation : int;
  n_tasks : int;
  allocation_agreement : float;
  comms_a : int;
  comms_b : int;
  comm_time_a : float;
  comm_time_b : float;
  moved_tasks : (int * int * int) list;
}

let diff a b =
  let ga = Schedule.graph a and gb = Schedule.graph b in
  if Graph.n_tasks ga <> Graph.n_tasks gb then
    invalid_arg "Compare.diff: different graphs";
  if Platform.p (Schedule.platform a) <> Platform.p (Schedule.platform b) then
    invalid_arg "Compare.diff: different platforms";
  let n = Graph.n_tasks ga in
  let same = ref 0 in
  let moved = ref [] in
  for v = n - 1 downto 0 do
    let pa = Schedule.proc_of_exn a v and pb = Schedule.proc_of_exn b v in
    if pa = pb then incr same else moved := (v, pa, pb) :: !moved
  done;
  let cap l = List.filteri (fun i _ -> i < 50) l in
  let makespan_a = Schedule.makespan a and makespan_b = Schedule.makespan b in
  {
    makespan_a;
    makespan_b;
    makespan_ratio = (if makespan_b > 0. then makespan_a /. makespan_b else 1.);
    same_allocation = !same;
    n_tasks = n;
    allocation_agreement = (if n > 0 then float_of_int !same /. float_of_int n else 1.);
    comms_a = Schedule.n_comm_events a;
    comms_b = Schedule.n_comm_events b;
    comm_time_a = Schedule.total_comm_time a;
    comm_time_b = Schedule.total_comm_time b;
    moved_tasks = cap !moved;
  }

let pp fmt t =
  Format.fprintf fmt
    "@[<v>makespans: %g vs %g (ratio %.3f)@ allocation agreement: %d/%d \
     (%.0f%%)@ communications: %d (%g time) vs %d (%g time)@]"
    t.makespan_a t.makespan_b t.makespan_ratio t.same_allocation t.n_tasks
    (100. *. t.allocation_agreement)
    t.comms_a t.comm_time_a t.comms_b t.comm_time_b
