module Graph = Taskgraph.Graph

let critical_path g plat =
  Taskgraph.Analysis.critical_path_weight g *. Platform.min_cycle_time plat

let total_work g plat = Graph.total_weight g /. Platform.aggregate_speed plat

let combined g plat = max (critical_path g plat) (total_work g plat)

(* Smallest positive link cost — the cheapest any message can travel. *)
let min_link plat =
  let p = Platform.p plat in
  let best = ref infinity in
  for q = 0 to p - 1 do
    for r = 0 to p - 1 do
      if q <> r then best := min !best (Platform.link plat ~src:q ~dst:r)
    done
  done;
  if !best = infinity then 0. else !best

let one_port_fork g plat =
  let base = combined g plat in
  match Graph.entry_tasks g with
  | [ v0 ] when Graph.out_degree g v0 >= 2 ->
      let tmin = Platform.min_cycle_time plat in
      let lmin = min_link plat in
      let children =
        List.rev
          (Graph.fold_succ_edges g v0 ~init:[] ~f:(fun acc e ->
               (Graph.weight g (Graph.edge_dst g e), Graph.edge_data g e) :: acc))
      in
      let k = List.length children in
      let weights = List.sort compare (List.map fst children) in
      let datas = List.sort compare (List.map snd children) in
      let min_w = List.hd weights in
      let prefix l =
        (* prefix.(i) = sum of the i smallest elements *)
        let a = Array.make (k + 1) 0. in
        List.iteri (fun i x -> a.(i + 1) <- a.(i) +. x) l;
        a
      in
      let wsum = prefix weights and dsum = prefix datas in
      (* Any schedule co-locates some c children with the parent: those
         execute serially after it (>= the c smallest weights at the
         fastest speed); the k - c others receive through the parent's
         send port serially (>= the k - c smallest volumes at the cheapest
         link), the last followed by one execution. *)
      let best_case = ref infinity in
      for c = 0 to k do
        let local = wsum.(c) *. tmin in
        let remote =
          if c = k then 0. else (dsum.(k - c) *. lmin) +. (min_w *. tmin)
        in
        best_case := min !best_case (max local remote)
      done;
      max base ((Graph.weight g v0 *. tmin) +. !best_case)
  | [] | [ _ ] | _ :: _ :: _ -> base

let quality sched =
  let g = Schedule.graph sched in
  let plat = Schedule.platform sched in
  let bound =
    if Commmodel.Comm_model.restricts_ports (Schedule.model sched) then
      one_port_fork g plat
    else combined g plat
  in
  if bound <= 0. then 1. else Schedule.makespan sched /. bound
