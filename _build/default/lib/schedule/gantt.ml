module Graph = Taskgraph.Graph

module Comm_model = Commmodel.Comm_model

(* Paint [label] over columns [c0, c1) of [row], clipping to length. *)
let paint row c0 c1 label =
  let len = Bytes.length row in
  let c0 = max 0 c0 and c1 = min len c1 in
  for c = c0 to c1 - 1 do
    Bytes.set row c '#'
  done;
  let lbl = label in
  let avail = c1 - c0 in
  if avail >= String.length lbl && avail > 0 then
    Bytes.blit_string lbl 0 row (c0 + ((avail - String.length lbl) / 2))
      (String.length lbl)

let render ?(width = 72) ?show_ports s =
  let plat = Schedule.platform s in
  let model = Schedule.model s in
  let show_ports =
    match show_ports with
    | Some b -> b
    | None -> Comm_model.restricts_ports model
  in
  let span = max (Schedule.makespan s) 1e-9 in
  let col t = int_of_float (float_of_int width *. t /. span) in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "makespan = %g   (one column = %g time units)\n" span
       (span /. float_of_int width));
  let p = Platform.p plat in
  for q = 0 to p - 1 do
    let row = Bytes.make width '.' in
    for v = 0 to Graph.n_tasks (Schedule.graph s) - 1 do
      match Schedule.placement s v with
      | Some pl when pl.proc = q && pl.finish > pl.start ->
          paint row (col pl.start) (max (col pl.finish) (col pl.start + 1))
            (string_of_int v)
      | Some _ | None -> ()
    done;
    Buffer.add_string buf (Printf.sprintf "P%-2d cpu  |%s|\n" q (Bytes.to_string row));
    if show_ports then begin
      let send_row = Bytes.make width '.' in
      let recv_row = Bytes.make width '.' in
      List.iter
        (fun (c : Schedule.comm) ->
          if c.finish > c.start then begin
            if c.src_proc = q then
              paint send_row (col c.start)
                (max (col c.finish) (col c.start + 1))
                (Printf.sprintf ">%d" c.dst_proc);
            if c.dst_proc = q then
              paint recv_row (col c.start)
                (max (col c.finish) (col c.start + 1))
                (Printf.sprintf "<%d" c.src_proc)
          end)
        (Schedule.comms s);
      Buffer.add_string buf (Printf.sprintf "    send |%s|\n" (Bytes.to_string send_row));
      Buffer.add_string buf (Printf.sprintf "    recv |%s|\n" (Bytes.to_string recv_row))
    end
  done;
  Buffer.contents buf

let listing s =
  let buf = Buffer.create 1024 in
  let events = ref [] in
  for v = 0 to Graph.n_tasks (Schedule.graph s) - 1 do
    match Schedule.placement s v with
    | Some pl ->
        events :=
          (pl.start, Printf.sprintf "[%10.3f, %10.3f) P%d  exec v%d" pl.start pl.finish pl.proc v)
          :: !events
    | None -> events := (infinity, Printf.sprintf "unplaced v%d" v) :: !events
  done;
  List.iter
    (fun (c : Schedule.comm) ->
      events :=
        ( c.start,
          Printf.sprintf "[%10.3f, %10.3f) P%d->P%d  comm e%d" c.start c.finish
            c.src_proc c.dst_proc c.edge )
        :: !events)
    (Schedule.comms s);
  let sorted = List.sort compare !events in
  List.iter (fun (_, line) -> Buffer.add_string buf (line ^ "\n")) sorted;
  Buffer.contents buf
