(** Lower bounds on the makespan of any valid schedule.

    Used to report schedule quality in absolute terms (the paper only
    compares heuristics to each other and to the §5.2 perfect-balance
    bound; these bounds certify how much headroom remains):

    - {e critical path}: the heaviest weight-path executed at the fastest
      cycle-time — no schedule can beat the chain even with free
      communication;
    - {e total work}: all weight spread over the aggregate speed
      [sum(1/t_i)] — perfect balance, free communication;
    - {e fan-out}: for each task, its finish plus the time to push its
      outgoing volumes through one send port — meaningful under one-port
      models when a task must feed many remote successors (at least
      [out-degree - something] messages serialise; we use the
      conservative version that assumes all but the co-located heaviest
      successor communicate). *)

(** [critical_path g plat] *)
val critical_path : Taskgraph.Graph.t -> Platform.t -> float

(** [total_work g plat] *)
val total_work : Taskgraph.Graph.t -> Platform.t -> float

(** [combined g plat] — the max of the above two (model-independent). *)
val combined : Taskgraph.Graph.t -> Platform.t -> float

(** [one_port_fork g plat] — additionally valid under one-port models
    only: [min_v (start-bound of v + serialized cheapest-send tail)]
    specialised to entry tasks feeding many successors; returns
    [combined]'s value when it does not apply. *)
val one_port_fork : Taskgraph.Graph.t -> Platform.t -> float

(** [quality sched] — [makespan / relevant lower bound] ([>= 1]; closer to
    1 is better).  Uses {!one_port_fork} when the schedule's model
    restricts ports, {!combined} otherwise. *)
val quality : Schedule.t -> float
