(** Structural comparison of two schedules for the same graph and
    platform — what actually differs when one heuristic beats another:
    the mapping, the communication volume, or just the packing. *)

type t = {
  makespan_a : float;
  makespan_b : float;
  makespan_ratio : float;  (** a / b; < 1 means a is faster *)
  same_allocation : int;  (** tasks mapped to the same processor *)
  n_tasks : int;
  allocation_agreement : float;  (** same_allocation / n_tasks *)
  comms_a : int;
  comms_b : int;
  comm_time_a : float;
  comm_time_b : float;
  moved_tasks : (int * int * int) list;
      (** (task, proc in a, proc in b), capped at 50 entries *)
}

(** @raise Invalid_argument when the schedules disagree on graph size or
    processor count. *)
val diff : Schedule.t -> Schedule.t -> t

val pp : Format.formatter -> t -> unit
