lib/schedule/compare.mli: Format Schedule
