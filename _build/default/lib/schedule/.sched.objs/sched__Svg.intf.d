lib/schedule/svg.mli: Schedule
