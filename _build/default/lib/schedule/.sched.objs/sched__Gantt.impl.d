lib/schedule/gantt.ml: Buffer Bytes Commmodel List Platform Printf Schedule String Taskgraph
