lib/schedule/validate.mli: Schedule
