lib/schedule/resource.ml: Array Commmodel Hashtbl List Prelude Timeline
