lib/schedule/gantt.mli: Schedule
