lib/schedule/schedule.ml: Array Commmodel Float Format List Platform Prelude Printf Resource Taskgraph Vec
