lib/schedule/metrics.mli: Format Schedule
