lib/schedule/svg.ml: Array Buffer Commmodel Export Float List Platform Printf Schedule String Taskgraph
