lib/schedule/compare.ml: Format List Platform Schedule Taskgraph
