lib/schedule/schedule.mli: Commmodel Format Platform Resource Taskgraph
