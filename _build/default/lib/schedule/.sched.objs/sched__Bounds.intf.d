lib/schedule/bounds.mli: Platform Schedule Taskgraph
