lib/schedule/bounds.ml: Array Commmodel List Platform Schedule Taskgraph
