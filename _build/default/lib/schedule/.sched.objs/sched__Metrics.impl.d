lib/schedule/metrics.ml: Array Format Platform Printf Schedule Taskgraph
