lib/schedule/validate.ml: Array Commmodel Hashtbl List Option Platform Prelude Printf Schedule String Taskgraph
