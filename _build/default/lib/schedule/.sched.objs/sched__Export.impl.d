lib/schedule/export.ml: Buffer Char Fun List Platform Printf Schedule String Taskgraph
