lib/schedule/resource.mli: Commmodel Prelude
