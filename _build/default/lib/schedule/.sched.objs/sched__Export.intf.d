lib/schedule/export.mli: Schedule
