open Prelude
module Comm_model = Commmodel.Comm_model

type proc_state = {
  compute : Timeline.t;
  send : Timeline.t;
  recv : Timeline.t;
      (* Physically equal to [send] under the uni-directional discipline. *)
}

type t = {
  model : Comm_model.t;
  procs : proc_state array;
  (* Undirected-link timelines keyed by (min, max) processor pair; lazily
     created, only populated under link-contention models. *)
  links : (int * int, Timeline.t) Hashtbl.t;
}

let create ~model ~p =
  let make_proc _ =
    let compute = Timeline.create () in
    let send = Timeline.create () in
    let recv =
      match model.Comm_model.ports with
      | Comm_model.One_port_unidirectional -> send
      | Comm_model.Unlimited | Comm_model.One_port_bidirectional ->
          Timeline.create ()
    in
    { compute; send; recv }
  in
  { model; procs = Array.init p make_proc; links = Hashtbl.create 16 }

let model t = t.model
let p t = Array.length t.procs
let compute t i = t.procs.(i).compute

let with_compute_if_no_overlap t i rest =
  if t.model.Comm_model.overlap then rest else t.procs.(i).compute :: rest

let send_busy t i =
  match t.model.Comm_model.ports with
  | Comm_model.Unlimited -> with_compute_if_no_overlap t i []
  | Comm_model.One_port_bidirectional | Comm_model.One_port_unidirectional ->
      with_compute_if_no_overlap t i [ t.procs.(i).send ]

let recv_busy t i =
  match t.model.Comm_model.ports with
  | Comm_model.Unlimited -> with_compute_if_no_overlap t i []
  | Comm_model.One_port_bidirectional -> with_compute_if_no_overlap t i [ t.procs.(i).recv ]
  | Comm_model.One_port_unidirectional ->
      (* recv is physically the send port *)
      with_compute_if_no_overlap t i [ t.procs.(i).recv ]

let link t ~src ~dst =
  let key = (min src dst, max src dst) in
  match Hashtbl.find_opt t.links key with
  | Some tl -> tl
  | None ->
      let tl = Timeline.create () in
      Hashtbl.add t.links key tl;
      tl

let comm_busy t ~src ~dst =
  let base = send_busy t src @ recv_busy t dst in
  if t.model.Comm_model.link_contention then link t ~src ~dst :: base else base

let commit_comm t ~src ~dst ~start ~finish =
  List.iter
    (fun tl -> Timeline.add tl ~start ~finish)
    (comm_busy t ~src ~dst)

let commit_task t ~proc ~start ~finish =
  Timeline.add t.procs.(proc).compute ~start ~finish

let copy t =
  let copy_proc ps =
    let send = Timeline.copy ps.send in
    let recv = if ps.recv == ps.send then send else Timeline.copy ps.recv in
    { compute = Timeline.copy ps.compute; send; recv }
  in
  let links = Hashtbl.create (Hashtbl.length t.links) in
  Hashtbl.iter (fun key tl -> Hashtbl.add links key (Timeline.copy tl)) t.links;
  { model = t.model; procs = Array.map copy_proc t.procs; links }
