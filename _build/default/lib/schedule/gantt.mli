(** ASCII Gantt charts and chronological listings of schedules.

    [render] draws one row per processor (plus send/receive port rows under
    one-port models, mirroring Figure 4 of the paper); [listing] prints
    every event with exact times, for regression tests and debugging. *)

(** [render ?width ?show_ports s] — [width] is the number of character
    columns for the time axis (default 72); [show_ports] adds the port
    rows (default: true exactly when the model restricts ports). *)
val render : ?width:int -> ?show_ports:bool -> Schedule.t -> string

(** Exact chronological event listing: one line per task placement and per
    communication hop. *)
val listing : Schedule.t -> string
