module Graph = Taskgraph.Graph
module Comm_model = Commmodel.Comm_model

(* Qualitative palette (ColorBrewer Set3 + friends), cycled by id. *)
let palette =
  [| "#8dd3c7"; "#ffffb3"; "#bebada"; "#fb8072"; "#80b1d3"; "#fdb462";
     "#b3de69"; "#fccde5"; "#d9d9d9"; "#bc80bd"; "#ccebc5"; "#ffed6f" |]

let colour i = palette.(i mod Array.length palette)

let xml_escape s =
  String.concat ""
    (List.map
       (fun c ->
         match c with
         | '<' -> "&lt;"
         | '>' -> "&gt;"
         | '&' -> "&amp;"
         | '"' -> "&quot;"
         | c -> String.make 1 c)
       (List.init (String.length s) (String.get s)))

let render ?(width = 1000) ?(lane_height = 26) ?show_ports s =
  let plat = Schedule.platform s in
  let g = Schedule.graph s in
  let model = Schedule.model s in
  let show_ports =
    match show_ports with
    | Some b -> b
    | None -> Comm_model.restricts_ports model
  in
  let p = Platform.p plat in
  let makespan = max (Schedule.makespan s) 1e-9 in
  let margin_left = 70 and margin_top = 20 and axis_height = 30 in
  let plot_width = width - margin_left - 20 in
  let port_height = lane_height / 2 in
  let lanes_per_proc = if show_ports then 3 else 1 in
  let proc_height =
    if show_ports then lane_height + (2 * port_height) + 8 else lane_height + 8
  in
  let height = margin_top + (p * proc_height) + axis_height in
  let x t = margin_left + int_of_float (float_of_int plot_width *. t /. makespan) in
  let buf = Buffer.create 4096 in
  let rect ~x:x0 ~y ~w ~h ~fill ~title ~label =
    Buffer.add_string buf
      (Printf.sprintf
         {|<g><rect x="%d" y="%d" width="%d" height="%d" fill="%s" stroke="#333" stroke-width="0.5"><title>%s</title></rect>|}
         x0 y (max w 1) h fill (xml_escape title));
    if w > 14 && label <> "" then
      Buffer.add_string buf
        (Printf.sprintf
           {|<text x="%d" y="%d" font-size="9" font-family="sans-serif" text-anchor="middle">%s</text>|}
           (x0 + (w / 2))
           (y + (h / 2) + 3)
           (xml_escape label));
    Buffer.add_string buf "</g>\n"
  in
  Buffer.add_string buf
    (Printf.sprintf
       {|<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" font-family="sans-serif">
<rect width="%d" height="%d" fill="white"/>
<text x="10" y="14" font-size="12">%s on %s (%s) — makespan %g</text>
|}
       width height width height
       (xml_escape (Graph.name g))
       (xml_escape (Platform.name plat))
       (Comm_model.name model) makespan);
  ignore lanes_per_proc;
  (* lanes *)
  for q = 0 to p - 1 do
    let y0 = margin_top + (q * proc_height) in
    Buffer.add_string buf
      (Printf.sprintf
         {|<text x="6" y="%d" font-size="11">P%d</text>
<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="#ddd"/>
|}
         (y0 + (lane_height / 2) + 4)
         q margin_left
         (y0 + lane_height)
         (margin_left + plot_width)
         (y0 + lane_height))
  done;
  (* tasks *)
  for v = 0 to Graph.n_tasks g - 1 do
    let pl = Schedule.placement_exn s v in
    if pl.Schedule.finish > pl.Schedule.start then begin
      let y0 = margin_top + (pl.Schedule.proc * proc_height) in
      rect
        ~x:(x pl.Schedule.start)
        ~y:y0
        ~w:(x pl.Schedule.finish - x pl.Schedule.start)
        ~h:lane_height ~fill:(colour v)
        ~title:
          (Printf.sprintf "v%d on P%d: [%g, %g)" v pl.Schedule.proc
             pl.Schedule.start pl.Schedule.finish)
        ~label:(Printf.sprintf "v%d" v)
    end
  done;
  (* communications on port lanes *)
  if show_ports then
    List.iter
      (fun (c : Schedule.comm) ->
        if c.finish > c.start then begin
          let draw ~proc ~lane ~label =
            let y0 =
              margin_top + (proc * proc_height) + lane_height
              + (lane * port_height)
            in
            rect ~x:(x c.start) ~y:y0
              ~w:(x c.finish - x c.start)
              ~h:port_height ~fill:(colour c.edge)
              ~title:
                (Printf.sprintf "e%d: P%d -> P%d [%g, %g)" c.edge c.src_proc
                   c.dst_proc c.start c.finish)
              ~label
          in
          draw ~proc:c.src_proc ~lane:0 ~label:(Printf.sprintf ">%d" c.dst_proc);
          draw ~proc:c.dst_proc ~lane:1 ~label:(Printf.sprintf "<%d" c.src_proc)
        end)
      (Schedule.comms s);
  (* time axis *)
  let axis_y = margin_top + (p * proc_height) + 12 in
  Buffer.add_string buf
    (Printf.sprintf
       {|<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="#333"/>
|}
       margin_left axis_y (margin_left + plot_width) axis_y);
  for tick = 0 to 10 do
    let t = makespan *. float_of_int tick /. 10. in
    Buffer.add_string buf
      (Printf.sprintf
         {|<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="#333"/><text x="%d" y="%d" font-size="9" text-anchor="middle">%g</text>
|}
         (x t) axis_y (x t) (axis_y + 4) (x t) (axis_y + 14)
         (Float.round (t *. 10.) /. 10.))
  done;
  Buffer.add_string buf "</svg>\n";
  Buffer.contents buf

let save s path = Export.write_file path (render s)
