module Graph = Taskgraph.Graph

let json_escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* Chrome trace "complete" event. *)
let complete_event ~name ~pid ~tid ~ts ~dur ~args =
  Printf.sprintf
    {|{"name":"%s","ph":"X","ts":%g,"dur":%g,"pid":%d,"tid":%d,"args":{%s}}|}
    (json_escape name) ts dur pid tid args

(* Thread ids inside a processor's trace group. *)
let tid_cpu = 0
let tid_send = 1
let tid_recv = 2

let to_chrome_trace ?(time_unit = 1.0) s =
  let g = Schedule.graph s in
  let events = ref [] in
  let emit ts line = events := (ts, line) :: !events in
  for v = 0 to Graph.n_tasks g - 1 do
    let pl = Schedule.placement_exn s v in
    emit pl.Schedule.start
      (complete_event
         ~name:(Printf.sprintf "v%d" v)
         ~pid:pl.Schedule.proc ~tid:tid_cpu
         ~ts:(time_unit *. pl.Schedule.start)
         ~dur:(time_unit *. (pl.Schedule.finish -. pl.Schedule.start))
         ~args:(Printf.sprintf {|"task":%d,"weight":%g|} v (Graph.weight g v)))
  done;
  List.iter
    (fun (c : Schedule.comm) ->
      let dur = time_unit *. (c.finish -. c.start) in
      let args =
        Printf.sprintf {|"edge":%d,"src":%d,"dst":%d|} c.edge c.src_proc
          c.dst_proc
      in
      let name = Printf.sprintf "e%d:%d->%d" c.edge c.src_proc c.dst_proc in
      emit c.start
        (complete_event ~name ~pid:c.src_proc ~tid:tid_send
           ~ts:(time_unit *. c.start) ~dur ~args);
      emit c.start
        (complete_event ~name ~pid:c.dst_proc ~tid:tid_recv
           ~ts:(time_unit *. c.start) ~dur ~args))
    (Schedule.comms s);
  (* Thread name metadata makes the ports readable in the viewer. *)
  let p = Platform.p (Schedule.platform s) in
  let metadata =
    List.concat_map
      (fun q ->
        List.map
          (fun (tid, label) ->
            Printf.sprintf
              {|{"name":"thread_name","ph":"M","pid":%d,"tid":%d,"args":{"name":"%s"}}|}
              q tid label)
          [ (tid_cpu, "cpu"); (tid_send, "send port"); (tid_recv, "recv port") ])
      (List.init p Fun.id)
  in
  let body =
    List.map snd (List.sort (fun (a, _) (b, _) -> compare a b) !events)
  in
  "[" ^ String.concat ",\n" (metadata @ body) ^ "]\n"

let to_csv s =
  let g = Schedule.graph s in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "kind,name,processor,resource,start,finish,duration\n";
  let row kind name proc resource start finish =
    Buffer.add_string buf
      (Printf.sprintf "%s,%s,%d,%s,%g,%g,%g\n" kind name proc resource start
         finish (finish -. start))
  in
  for v = 0 to Graph.n_tasks g - 1 do
    let pl = Schedule.placement_exn s v in
    row "task" (Printf.sprintf "v%d" v) pl.Schedule.proc "cpu" pl.Schedule.start
      pl.Schedule.finish
  done;
  List.iter
    (fun (c : Schedule.comm) ->
      let name = Printf.sprintf "e%d" c.edge in
      row "comm" name c.src_proc "send" c.start c.finish;
      row "comm" name c.dst_proc "recv" c.start c.finish)
    (Schedule.comms s);
  Buffer.contents buf

let write_file path contents =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc contents)
