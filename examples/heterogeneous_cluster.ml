(* Scheduling a dense LU factorisation on a two-rack workstation cluster.

   The scenario the paper's introduction motivates: a network of
   workstations with different speeds and a switch hierarchy, where the
   classical macro-dataflow model wildly over-estimates what the network
   can do.  We build a sparse topology (two racks bridged by one uplink,
   so inter-rack messages are routed through two hops), schedule the same
   workload under macro-dataflow and one-port, and compare the predicted
   makespans.

   Run with:  dune exec examples/heterogeneous_cluster.exe *)

module O = Onesched

let () =
  (* Rack A: four fast nodes (0-3); rack B: four older nodes (4-7).
     Processors 8 and 9 are the rack switches (modelled as processors so
     the routing goes through them; they never receive work because their
     cycle-time is prohibitive). *)
  let cycle_times = [| 2.; 2.; 2.; 2.; 5.; 5.; 5.; 5.; 1000.; 1000. |] in
  let links =
    (* intra-rack star through the local switch, cheap *)
    List.init 4 (fun i -> (i, 8, 0.5))
    @ List.init 4 (fun i -> (4 + i, 9, 0.5))
    (* one uplink between the switches, more expensive *)
    @ [ (8, 9, 2.) ]
  in
  let platform =
    O.Platform.with_topology ~name:"two-racks" ~cycle_times ~links ()
  in
  Format.printf "route 0 -> 5: %s@."
    (String.concat " "
       (List.map
          (fun (a, b) -> Printf.sprintf "%d->%d" a b)
          (O.Platform.route platform ~src:0 ~dst:5)));

  let graph = O.Kernels.lu ~n:40 ~ccr:2. in
  Format.printf "workload: %a@.@." O.Graph.pp graph;

  let compare_models heuristic name =
    List.iter
      (fun model ->
        let sched = heuristic ~model platform graph in
        let m = O.Metrics.compute sched in
        O.Validate.check_exn sched;
        Format.printf "%-6s %-18s makespan %8.0f  speedup %5.2f  comms %5d@."
          name
          (O.Comm_model.name model)
          m.O.Metrics.makespan m.O.Metrics.speedup m.O.Metrics.n_comm_events)
      [ O.Comm_model.macro_dataflow; O.Comm_model.one_port;
        O.Comm_model.one_port_unidirectional ]
  in
  compare_models
    (fun ~model p g -> O.Heft.schedule ~params:(O.Params.of_model model) p g)
    "heft";
  compare_models
    (fun ~model p g -> O.Ilha.schedule ~params:(O.Params.of_model model) p g)
    "ilha";
  print_endline
    "\nThe macro-dataflow makespan is the number a contention-free model\n\
     promises; the one-port rows are what the switch hierarchy actually\n\
     supports. The gap is the paper's argument in one table."
