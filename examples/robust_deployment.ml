(* Choosing a scheduler for a noisy cluster.

   Static schedules are computed from nominal costs, but real tasks slip:
   caches miss, pages fault, a neighbour saturates the switch.  A schedule
   whose makespan collapses under 30% duration noise is a bad deployment
   choice even if its nominal makespan wins.  This example schedules the
   LAPLACE kernel with every registered heuristic, injects multiplicative
   duration jitter (Monte-Carlo over the schedule's event DAG, keeping
   every mapping and ordering decision), and ranks heuristics by their
   95th-percentile makespan.

   Run with:  dune exec examples/robust_deployment.exe *)

module O = Onesched

let () =
  let platform = O.Platform.paper_platform () in
  let graph = O.Kernels.laplace ~n:30 ~ccr:10. in
  let jitter = 0.3 and trials = 200 in
  Printf.printf "workload %s, jitter %.0f%%, %d trials\n\n"
    (O.Graph.name graph) (100. *. jitter) trials;
  Printf.printf "%-8s %10s %10s %10s %10s\n" "heuristic" "nominal" "mean" "p95"
    "worst";
  let results =
    List.map
      (fun entry ->
        let sched =
          entry.O.Registry.scheduler O.Params.default platform graph
        in
        let rng = O.Rng.create ~seed:2002 in
        let stats = O.Robustness.monte_carlo sched rng ~jitter ~trials in
        (entry.O.Registry.name, stats))
      O.Registry.all
  in
  List.iter
    (fun (name, s) ->
      Printf.printf "%-8s %10.0f %10.0f %10.0f %10.0f\n" name
        s.O.Robustness.nominal s.O.Robustness.mean s.O.Robustness.p95
        s.O.Robustness.worst)
    results;
  let best =
    List.fold_left
      (fun (bn, bs) (n, s) ->
        if s.O.Robustness.p95 < bs.O.Robustness.p95 then (n, s) else (bn, bs))
      (List.hd results) (List.tl results)
  in
  Printf.printf "\ndeploy: %s (best p95 makespan %.0f)\n" (fst best)
    (snd best).O.Robustness.p95
