(* Inspecting a one-port schedule — and the scheduler itself — with
   external tools.

   Two different traces come out of this example:

   1. the {e schedule}: DOOLITTLE's computed timeline exported as a
      Chrome-trace JSON (each processor is a process with cpu / send
      port / recv port threads, so one-port serialisation is directly
      visible in the viewer);

   2. the {e scheduler run}: HEFT scheduling LU n=100 with the obs layer
      recording phase spans (rank / map / place) and engine counters,
      exported through [Obs_trace] — load it in chrome://tracing or
      https://ui.perfetto.dev to see where the heuristic spends its time.

   Run with:  dune exec examples/trace_export.exe *)

module O = Onesched

let () =
  let platform = O.Platform.paper_platform () in
  let graph = O.Kernels.doolittle ~n:30 ~ccr:10. in
  let sched = O.Heft.schedule platform graph in

  (* Try to improve the mapping without re-running the heuristic. *)
  let refined = O.Refine.improve sched in
  Printf.printf "HEFT makespan %.0f; after local search %.0f (%d moves)\n"
    refined.O.Refine.initial_makespan refined.O.Refine.final_makespan
    refined.O.Refine.accepted_moves;
  let sched = refined.O.Refine.schedule in

  Printf.printf "bound quality: %.2fx the lower bound\n\n"
    (O.Bounds.quality sched);
  print_string (O.Utilization.render (O.Utilization.profile ~buckets:60 sched));

  let trace = O.Export.to_chrome_trace sched in
  let csv = O.Export.to_csv sched in
  O.Export.write_file "doolittle_schedule.json" trace;
  O.Export.write_file "doolittle_schedule.csv" csv;
  Printf.printf
    "\nwrote doolittle_schedule.json (%d bytes, chrome://tracing) and \
     doolittle_schedule.csv (%d bytes)\n"
    (String.length trace) (String.length csv);

  (* Part 2: trace the scheduler run itself.  Enable the obs layer, run
     HEFT on LU n=100, and export the recorded spans plus the counter
     totals as a Chrome trace. *)
  O.Obs_counters.enable ();
  O.Obs_counters.reset ();
  O.Obs_span.enable ();
  O.Obs_span.reset ();
  let lu = O.Kernels.lu ~n:100 ~ccr:10. in
  let lu_sched, report =
    O.Obs_report.capture (fun () -> O.Heft.schedule platform lu)
  in
  O.Obs_span.disable ();
  O.Obs_counters.disable ();
  Printf.printf "\nHEFT on %s: makespan %.0f\n" (O.Graph.name lu)
    (O.Schedule.makespan lu_sched);
  Format.printf "%a@." O.Obs_report.pp report;
  O.Obs_trace.write
    ~counters:report.O.Obs_report.counters
    "heft_lu100.trace.json" (O.Obs_span.events ());
  Printf.printf
    "wrote heft_lu100.trace.json (load in chrome://tracing or ui.perfetto.dev)\n"
