(* Tuning ILHA's chunk size B for a stencil workload.

   §5.3 reports that the best B is workload-dependent (4 for LU, 38 for
   LAPLACE/STENCIL, 20 for the growing-level kernels) and bounded by the
   perfect-balance chunk M = lcm(t_i) * sum(1/t_i).  This example
   reproduces that tuning loop on one workload: compute M, sweep B over a
   sample of [1, M], and report the best chunk alongside the optimal
   integer task distribution the load balancer derives.

   Run with:  dune exec examples/pipeline_tuning.exe *)

module O = Onesched

let () =
  let platform = O.Platform.paper_platform () in
  let graph = O.Kernels.stencil ~n:40 ~ccr:10. in
  let m = O.Load_balance.perfect_chunk platform in
  Printf.printf "perfect-balance chunk M = %d\n" m;
  let counts = O.Load_balance.distribute platform ~n:m in
  Printf.printf "optimal distribution of %d equal tasks: %s (round time %g)\n\n"
    m
    (String.concat "," (Array.to_list (Array.map string_of_int counts)))
    (O.Load_balance.round_time platform counts);

  let candidates =
    List.sort_uniq compare [ 1; 2; 4; 8; 10; m / 4; m / 2; m; 2 * m ]
  in
  let best = ref (0, infinity) in
  List.iter
    (fun b ->
      if b >= 1 then begin
        let sched =
          O.Ilha.schedule ~params:(O.Params.make ~b ()) platform graph
        in
        let makespan = O.Schedule.makespan sched in
        let metrics = O.Metrics.compute sched in
        Printf.printf "B = %3d  makespan %8.0f  speedup %.3f  comms %d\n" b
          makespan metrics.O.Metrics.speedup metrics.O.Metrics.n_comm_events;
        if makespan < snd !best then best := (b, makespan)
      end)
    candidates;
  Printf.printf "\nbest chunk: B = %d (makespan %g)\n" (fst !best) (snd !best);

  (* ILHA's variants from §4.4: accept single-communication placements in
     the scan, or keep only the allocation and re-schedule greedily. *)
  let b = fst !best in
  List.iter
    (fun (label, scan, reschedule) ->
      let sched =
        O.Ilha.schedule
          ~params:(O.Params.make ~b ~scan ~reschedule ())
          platform graph
      in
      Printf.printf "variant %-28s makespan %8.0f\n" label
        (O.Schedule.makespan sched))
    [
      ("zero-comm scan (paper)", O.Params.Scan_zero_comm, false);
      ("one-comm scan", O.Params.Scan_one_comm, false);
      ("zero-comm + reschedule", O.Params.Scan_zero_comm, true);
    ]
