(* Quickstart: build a task graph, pick a platform and a communication
   model, schedule it, inspect the result.

   Run with:  dune exec examples/quickstart.exe *)

module O = Onesched

let () =
  (* A small application DAG: a diamond with a heavy reduction.  Weights
     are computation costs; the third element of each edge is the number
     of data items shipped when the two endpoints run on different
     processors. *)
  let graph =
    O.Graph.create ~name:"diamond"
      ~weights:[| 2.; 4.; 4.; 4.; 6. |]
      ~edges:
        [ (0, 1, 2.); (0, 2, 2.); (0, 3, 2.); (1, 4, 1.); (2, 4, 1.); (3, 4, 1.) ]
      ()
  in

  (* Three machines: two fast, one slower; every link ships one data item
     per time unit. *)
  let platform =
    O.Platform.fully_connected ~name:"trio" ~cycle_times:[| 1.; 1.; 2. |]
      ~link_cost:1. ()
  in

  (* Schedule under the paper's bi-directional one-port model: each
     machine sends to at most one peer and receives from at most one peer
     at any instant. *)
  let params = O.Params.of_model O.Comm_model.one_port in
  let sched = O.Heft.schedule ~params platform graph in

  Format.printf "== metrics ==@.%a@.@." O.Metrics.pp (O.Metrics.compute sched);
  print_endline "== gantt ==";
  print_string (O.Gantt.render ~width:64 sched);
  print_endline "== events ==";
  print_string (O.Gantt.listing sched);

  (* The validator re-checks every constraint independently — precedence,
     exclusivity, port discipline. *)
  match O.Validate.check sched with
  | Ok () -> print_endline "schedule is valid"
  | Error es -> List.iter print_endline es
